#include "api/database.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/query_pipeline.h"
#include "api/session.h"
#include "common/clock.h"
#include "common/hash_util.h"
#include "common/scheduler.h"
#include "common/str_util.h"
#include "optimizer/dp_optimizer.h"
#include "txn/snapshot.h"

namespace skinner {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSkinnerC: return "Skinner-C";
    case EngineKind::kSkinnerG: return "Skinner-G";
    case EngineKind::kSkinnerH: return "Skinner-H";
    case EngineKind::kVolcano: return "Volcano";
    case EngineKind::kBlock: return "Block";
    case EngineKind::kRandomOrder: return "Random";
    case EngineKind::kEddy: return "Eddy";
    case EngineKind::kReopt: return "Reopt";
  }
  return "?";
}

Database::Database() : Database(SchedulerOptions{}) {}

Database::Database(const SchedulerOptions& scheduler_opts)
    : scheduler_(new Scheduler(scheduler_opts)),
      default_session_(new Session(this, /*id=*/0, ExecOptions{})) {}

Database::~Database() = default;

std::unique_ptr<Session> Database::CreateSession(const ExecOptions& defaults) {
  return std::unique_ptr<Session>(
      new Session(this, next_session_id_.fetch_add(1), defaults));
}

Status Database::Execute(const std::string& sql) {
  // Exclusive: catalog mutation, row appends and in-place mutations wait
  // for running queries (shared holders) and block new ones until done.
  std::unique_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  SKINNER_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      // Keep the column list: a durable database logs it after the create
      // succeeds (write-ahead of nothing — DDL is its own redo record).
      std::vector<ColumnDef> defs = stmt.create->columns;
      auto res = catalog_.CreateTable(stmt.create->name,
                                      Schema(std::move(stmt.create->columns)));
      if (!res.ok()) return res.status();
      if (wal_ != nullptr) {
        WalRecord rec;
        rec.type = WalRecordType::kCreateTable;
        rec.table = stmt.create->name;
        rec.columns = std::move(defs);
        SKINNER_RETURN_IF_ERROR(LogRecord(&rec));
      }
      return Status::OK();
    }
    case Statement::Kind::kDropTable: {
      SKINNER_RETURN_IF_ERROR(catalog_.DropTable(stmt.drop->name));
      if (wal_ != nullptr) {
        WalRecord rec;
        rec.type = WalRecordType::kDropTable;
        rec.table = stmt.drop->name;
        SKINNER_RETURN_IF_ERROR(LogRecord(&rec));
      }
      return Status::OK();
    }
    case Statement::Kind::kInsert: {
      Table* table = catalog_.FindTable(stmt.insert->table);
      if (table == nullptr) {
        return Status::NotFound("no such table: " + stmt.insert->table);
      }
      EvalContext ctx;  // literal expressions only: no tables needed
      std::vector<std::vector<Value>> rows;
      rows.reserve(stmt.insert->rows.size());
      for (auto& row_exprs : stmt.insert->rows) {
        std::vector<Value> row;
        row.reserve(row_exprs.size());
        for (auto& e : row_exprs) {
          std::set<int> tables;
          e->CollectTables(&tables);
          if (e->kind == ExprKind::kColumnRef || !tables.empty()) {
            return Status::InvalidArgument("INSERT values must be literals");
          }
          std::set<int> params;
          e->CollectParams(&params);
          if (!params.empty()) {
            return Status::InvalidArgument(
                "INSERT values cannot contain ? parameters");
          }
          row.push_back(EvalExpr(*e, ctx));
        }
        rows.push_back(std::move(row));
      }
      // Apply, then log exactly the appended prefix: a mid-statement type
      // error leaves the earlier rows in the table, so they must also be
      // in the log.
      Status st;
      size_t applied = 0;
      for (; applied < rows.size(); ++applied) {
        st = table->AppendRow(rows[applied]);
        if (!st.ok()) break;
      }
      if (wal_ != nullptr && applied > 0) {
        WalRecord rec;
        rec.type = WalRecordType::kInsertRows;
        rec.table = table->name();
        rec.rows.assign(std::make_move_iterator(rows.begin()),
                        std::make_move_iterator(rows.begin() +
                                                static_cast<long>(applied)));
        SKINNER_RETURN_IF_ERROR(LogRecord(&rec));
      }
      return st;
    }
    case Statement::Kind::kUpdate: {
      SKINNER_ASSIGN_OR_RETURN(
          BoundMutation m, BindUpdate(stmt.update.get(), &catalog_, &udfs_));
      if (m.num_params > 0) {
        return Status::InvalidArgument(
            "UPDATE with ? parameters requires Session::Prepare");
      }
      auto out = ExecuteMutationLocked(m);
      if (!out.ok()) return out.status();
      return Status::OK();
    }
    case Statement::Kind::kDelete: {
      SKINNER_ASSIGN_OR_RETURN(
          BoundMutation m, BindDelete(stmt.del.get(), &catalog_, &udfs_));
      if (m.num_params > 0) {
        return Status::InvalidArgument(
            "DELETE with ? parameters requires Session::Prepare");
      }
      auto out = ExecuteMutationLocked(m);
      if (!out.ok()) return out.status();
      return Status::OK();
    }
    case Statement::Kind::kSelect:
      return Status::InvalidArgument("use Query() for SELECT statements");
  }
  return Status::Internal("unreachable");
}

Result<QueryOutput> Database::ExecuteMutationLocked(const BoundMutation& m) {
  Stopwatch watch;
  const uint64_t appends_before = wal_ != nullptr ? wal_->appends() : 0;
  const uint64_t bytes_before = wal_ != nullptr ? wal_->bytes() : 0;
  // Two-phase: the scan sees only pre-mutation state, and a SET type error
  // surfaces before anything is written.
  SKINNER_ASSIGN_OR_RETURN(MutationPlan plan,
                           ComputeMutation(m, catalog_.string_pool()));
  SKINNER_RETURN_IF_ERROR(ApplyMutation(m.table, plan));
  if (wal_ != nullptr &&
      (!plan.cell_changes.empty() || !plan.deleted_rows.empty())) {
    WalRecord rec;
    rec.table = m.table->name();
    if (m.kind == Statement::Kind::kUpdate) {
      rec.type = WalRecordType::kUpdateCells;
      rec.cells.reserve(plan.cell_changes.size());
      for (const auto& cc : plan.cell_changes) {
        rec.cells.push_back(WalRecord::Cell{cc.row, cc.col, cc.value});
      }
    } else {
      rec.type = WalRecordType::kDeleteRows;
      rec.deleted_rows = plan.deleted_rows;
    }
    SKINNER_RETURN_IF_ERROR(LogRecord(&rec));
  }
  QueryOutput out;
  out.result.column_names = {"rows_affected"};
  out.result.rows.push_back({Value::Int(plan.rows_matched)});
  out.stats.total_cost = plan.cost;
  out.stats.wall_ms = watch.ElapsedMillis();
  out.stats.wal_appends =
      (wal_ != nullptr ? wal_->appends() : 0) - appends_before;
  out.stats.wal_bytes = (wal_ != nullptr ? wal_->bytes() : 0) - bytes_before;
  out.stats.recovery_replayed_records =
      recovery_replayed_.load(std::memory_order_relaxed);
  out.stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  return out;
}

Status Database::LogRecord(WalRecord* record) {
  SKINNER_RETURN_IF_ERROR(wal_->Append(record));
  wal_appends_.store(wal_->appends(), std::memory_order_relaxed);
  wal_bytes_.store(wal_->bytes(), std::memory_order_relaxed);
  return Status::OK();
}

Status Database::ApplyWalRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kCreateTable: {
      auto res = catalog_.CreateTable(record.table, Schema(record.columns));
      if (!res.ok()) return res.status();
      return Status::OK();
    }
    case WalRecordType::kDropTable:
      return catalog_.DropTable(record.table);
    case WalRecordType::kInsertRows:
    case WalRecordType::kUpdateCells:
    case WalRecordType::kDeleteRows: {
      Table* table = catalog_.FindTable(record.table);
      if (table == nullptr) {
        return Status::IoError("wal record references unknown table: " +
                               record.table);
      }
      if (record.type == WalRecordType::kInsertRows) {
        for (const auto& row : record.rows) {
          SKINNER_RETURN_IF_ERROR(table->AppendRow(row));
        }
      } else if (record.type == WalRecordType::kUpdateCells) {
        for (const auto& c : record.cells) {
          if (c.row < 0 || c.row >= table->num_rows() || c.col < 0 ||
              c.col >= table->schema().num_columns()) {
            return Status::IoError("wal update cell out of range in " +
                                   record.table);
          }
          SKINNER_RETURN_IF_ERROR(table->UpdateCell(c.row, c.col, c.value));
        }
      } else {
        for (int64_t r : record.deleted_rows) {
          if (r < 0 || r >= table->num_rows()) {
            return Status::IoError("wal delete row out of range in " +
                                   record.table);
          }
          table->DeleteRow(r);
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, FsyncPolicy fsync,
    const SchedulerOptions& scheduler_opts) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError(
        StrFormat("mkdir %s: %s", dir.c_str(), std::strerror(errno)));
  }
  auto db = std::unique_ptr<Database>(new Database(scheduler_opts));
  db->storage_dir_ = dir;
  uint64_t snapshot_lsn = 0;
  SKINNER_RETURN_IF_ERROR(
      LoadSnapshot(dir + "/checkpoint.skdb", &db->catalog_, &snapshot_lsn));
  SKINNER_ASSIGN_OR_RETURN(WalReplay replay, ReplayWal(dir + "/wal.log"));
  // LSN fence: a crash between the snapshot rename and the WAL reset
  // leaves the compacted snapshot plus the whole pre-checkpoint log.
  // Records at or below the snapshot's fence are already inside it —
  // re-applying them would double-insert, and their row ids address the
  // pre-compaction numbering, so they must be skipped, not replayed.
  uint64_t applied = 0;
  for (const WalRecord& rec : replay.records) {
    if (rec.lsn <= snapshot_lsn) continue;
    SKINNER_RETURN_IF_ERROR(db->ApplyWalRecord(rec));
    ++applied;
  }
  db->recovery_replayed_.store(applied, std::memory_order_relaxed);
  // LSNs continue past both the fence and the log so they never repeat
  // across checkpoints.
  uint64_t next_lsn = snapshot_lsn + 1;
  if (!replay.records.empty() && replay.records.back().lsn >= next_lsn) {
    next_lsn = replay.records.back().lsn + 1;
  }
  SKINNER_ASSIGN_OR_RETURN(db->wal_,
                           WalWriter::Open(dir + "/wal.log", fsync, next_lsn));
  return db;
}

Status Database::Checkpoint() {
  std::unique_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  // Compaction rewrites masked tables in place (bumping data_version, so
  // cached artifacts over the old row numbering die with it).
  for (const std::string& name : catalog_.TableNames()) {
    catalog_.FindTable(name)->Compact();
  }
  if (wal_ != nullptr) {
    // The snapshot commits with the current LSN fence before the log is
    // reset; a crash between the two replays nothing (every logged record
    // is <= the fence), so the window is idempotent.
    SKINNER_RETURN_IF_ERROR(WriteSnapshot(storage_dir_ + "/checkpoint.skdb",
                                          catalog_, wal_->last_lsn()));
    SKINNER_RETURN_IF_ERROR(wal_->Reset());
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<std::unique_ptr<BoundQuery>> Database::Bind(const std::string& sql) {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  QueryPipeline pipeline(&catalog_, &udfs_, &stats_, &cache_,
                         scheduler_.get());
  SKINNER_ASSIGN_OR_RETURN(Statement stmt, pipeline.Parse(sql));
  SKINNER_ASSIGN_OR_RETURN(BoundStage bound, pipeline.Bind(std::move(stmt)));
  return std::move(bound.query);
}

Result<QueryOutput> Database::Query(const std::string& sql,
                                    const ExecOptions& opts) {
  return default_session_->Query(sql, opts);
}

Result<PlanResult> Database::OptimizerOrder(const BoundQuery& query) {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  SKINNER_ASSIGN_OR_RETURN(QueryInfo info, QueryInfo::Analyze(query));
  Estimator estimator(&stats_);
  return OptimizeWithEstimates(info, query, &estimator);
}

Result<QueryOutput> Database::RunSelect(const BoundQuery& query,
                                        const ExecOptions& opts) {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  QueryPipeline pipeline(&catalog_, &udfs_, &stats_, &cache_,
                         scheduler_.get());
  SKINNER_ASSIGN_OR_RETURN(PreparedStage prep,
                           pipeline.PrepareExternal(&query, opts));
  SKINNER_ASSIGN_OR_RETURN(ExecutedStage exec, pipeline.Execute(prep, opts));
  return pipeline.PostProcess(prep, std::move(exec));
}

std::vector<Result<QueryOutput>> Database::QueryBatch(
    const std::vector<BatchItem>& items, const BatchOptions& opts) {
  return default_session_->QueryBatch(items, opts);
}

std::vector<Result<QueryOutput>> Database::QueryBatchInternal(
    const std::vector<BatchItem>& items, const BatchOptions& bopts) {
  const size_t n = items.size();
  // Prepared-state sharing scope: the database's cross-query cache, or a
  // cache that lives exactly as long as this batch. (Capacity never gates
  // within-batch sharing either way: template-group members bind to the
  // owner's handle directly in stage C.)
  PreparedCache local_cache;
  PreparedCache* cache = bopts.use_prepared_cache ? &cache_ : &local_cache;
  Scheduler* sched =
      bopts.scheduler != nullptr ? bopts.scheduler : scheduler_.get();
  QueryPipeline pipeline(&catalog_, &udfs_, &stats_, cache, sched);

  std::vector<std::optional<Result<QueryOutput>>> results(n);
  std::vector<std::optional<BoundStage>> bound(n);
  std::vector<ExecOptions> eopts(n);

  // One template group per distinct (signature, prepare variant): the
  // first item owns the group and pays the one pre-processing build;
  // every other member executes over the owner's shared artifact.
  struct Group {
    size_t owner;
    std::string signature;
    std::vector<int> warm_order;  // snapshot, pre-batch (deterministic)
    PreparedHandle handle;        // set by stage B
  };
  std::unordered_map<std::string, Group> groups;  // key -> group
  std::vector<std::string> item_key(n);
  std::vector<const std::string*> owner_keys;  // first-seen order

  // Stage A (sequential): parse + bind every item. Binding interns string
  // literals into the shared pool, which is append-only but not
  // thread-safe — and it is orders of magnitude cheaper than
  // prepare/execute, which do run concurrently below. Grouping (and the
  // warm-start snapshot) happens here, before anything executes, so which
  // item pays the build and which UCT hint every item sees are fixed
  // deterministically — independent of worker count and schedule.
  for (size_t i = 0; i < n; ++i) {
    eopts[i] = items[i].opts;
    eopts[i].use_prepared_cache = true;  // within-batch sharing is the point
    if (bopts.derive_item_seeds) {
      eopts[i].seed = HashMix64(bopts.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    }
    auto stmt = pipeline.Parse(items[i].sql);
    if (!stmt.ok()) {
      results[i] = stmt.status();
      continue;
    }
    auto b = pipeline.Bind(stmt.MoveValue());
    if (!b.ok()) {
      results[i] = b.status();
      continue;
    }
    std::string signature = ComputeQuerySignature(*b.value().query);
    item_key[i] = PreparedCacheKey(signature, eopts[i].build_hash_indexes);
    auto [it, inserted] = groups.emplace(item_key[i], Group{});
    if (inserted) {
      it->second.owner = i;
      it->second.warm_order = cache->WarmOrder(signature);
      it->second.signature = std::move(signature);
      owner_keys.push_back(&it->first);
    }
    bound[i] = b.MoveValue();
  }

  const int workers =
      static_cast<int>(std::min<size_t>(std::max(bopts.num_workers, 1), n));

  // Stage B (parallel): one prepare per group, run by the owner. Groups
  // are distinct map entries, so concurrent writes to their fields are
  // race-free (the map's structure is frozen after stage A). Workers are
  // participation slots on the database's shared pool — nothing is spun up
  // per call, and concurrent batches share one set of threads.
  std::vector<std::optional<PreparedStage>> prepared(n);
  SchedParallelFor(sched, owner_keys.size(), workers, [&](size_t g) {
    Group& group = groups.find(*owner_keys[g])->second;
    const size_t i = group.owner;
    auto prep = pipeline.Prepare(std::move(*bound[i]), eopts[i]);
    if (!prep.ok()) {
      results[i] = prep.status();
      return;
    }
    group.handle = prep.value().shared;
    prepared[i] = prep.MoveValue();
  });

  // Stage C (parallel): execute + post-process every item. Members bind
  // directly to their owner's artifact handle — no cache round-trip, so
  // sharing cannot be broken by LRU eviction inside large batches.
  SchedParallelFor(sched, n, workers, [&](size_t i) {
    if (results[i].has_value()) return;  // parse/bind/prepare error
    if (!prepared[i].has_value()) {
      const Group& group = groups.find(item_key[i])->second;
      if (group.handle == nullptr) {
        // The owner's prepare failed; every member fails identically.
        results[i] = results[group.owner].has_value() &&
                             !results[group.owner]->ok()
                         ? Result<QueryOutput>(results[group.owner]->status())
                         : Result<QueryOutput>(
                               Status::Internal("group prepare failed"));
        return;
      }
      prepared[i] = pipeline.RebindStage(group.handle, group.signature);
    }
    if (eopts[i].warm_start) {
      prepared[i]->warm_order = groups.find(item_key[i])->second.warm_order;
    } else {
      prepared[i]->warm_order.clear();
    }
    auto exec = pipeline.Execute(*prepared[i], eopts[i]);
    if (!exec.ok()) {
      results[i] = exec.status();
      return;
    }
    results[i] = pipeline.PostProcess(*prepared[i], exec.MoveValue());
    prepared[i].reset();  // release the artifact handle promptly
  });

  std::vector<Result<QueryOutput>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(results[i].has_value()
                      ? std::move(*results[i])
                      : Result<QueryOutput>(
                            Status::Internal("batch item not executed")));
  }
  return out;
}

}  // namespace skinner
