#include "api/database.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/query_pipeline.h"
#include "api/session.h"
#include "common/clock.h"
#include "common/hash_util.h"
#include "common/scheduler.h"
#include "optimizer/dp_optimizer.h"

namespace skinner {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSkinnerC: return "Skinner-C";
    case EngineKind::kSkinnerG: return "Skinner-G";
    case EngineKind::kSkinnerH: return "Skinner-H";
    case EngineKind::kVolcano: return "Volcano";
    case EngineKind::kBlock: return "Block";
    case EngineKind::kRandomOrder: return "Random";
    case EngineKind::kEddy: return "Eddy";
    case EngineKind::kReopt: return "Reopt";
  }
  return "?";
}

Database::Database() : Database(SchedulerOptions{}) {}

Database::Database(const SchedulerOptions& scheduler_opts)
    : scheduler_(new Scheduler(scheduler_opts)),
      default_session_(new Session(this, /*id=*/0, ExecOptions{})) {}

Database::~Database() = default;

std::unique_ptr<Session> Database::CreateSession(const ExecOptions& defaults) {
  return std::unique_ptr<Session>(
      new Session(this, next_session_id_.fetch_add(1), defaults));
}

Status Database::Execute(const std::string& sql) {
  // Exclusive: catalog mutation and row appends wait for running queries
  // (shared holders) and block new ones until done.
  std::unique_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  SKINNER_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      auto res = catalog_.CreateTable(stmt.create->name,
                                      Schema(std::move(stmt.create->columns)));
      if (!res.ok()) return res.status();
      return Status::OK();
    }
    case Statement::Kind::kDropTable:
      return catalog_.DropTable(stmt.drop->name);
    case Statement::Kind::kInsert: {
      Table* table = catalog_.FindTable(stmt.insert->table);
      if (table == nullptr) {
        return Status::NotFound("no such table: " + stmt.insert->table);
      }
      EvalContext ctx;  // literal expressions only: no tables needed
      for (auto& row_exprs : stmt.insert->rows) {
        std::vector<Value> row;
        row.reserve(row_exprs.size());
        for (auto& e : row_exprs) {
          std::set<int> tables;
          e->CollectTables(&tables);
          if (e->kind == ExprKind::kColumnRef || !tables.empty()) {
            return Status::InvalidArgument("INSERT values must be literals");
          }
          std::set<int> params;
          e->CollectParams(&params);
          if (!params.empty()) {
            return Status::InvalidArgument(
                "INSERT values cannot contain ? parameters");
          }
          row.push_back(EvalExpr(*e, ctx));
        }
        SKINNER_RETURN_IF_ERROR(table->AppendRow(row));
      }
      return Status::OK();
    }
    case Statement::Kind::kSelect:
      return Status::InvalidArgument("use Query() for SELECT statements");
  }
  return Status::Internal("unreachable");
}

Result<std::unique_ptr<BoundQuery>> Database::Bind(const std::string& sql) {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  QueryPipeline pipeline(&catalog_, &udfs_, &stats_, &cache_,
                         scheduler_.get());
  SKINNER_ASSIGN_OR_RETURN(Statement stmt, pipeline.Parse(sql));
  SKINNER_ASSIGN_OR_RETURN(BoundStage bound, pipeline.Bind(std::move(stmt)));
  return std::move(bound.query);
}

Result<QueryOutput> Database::Query(const std::string& sql,
                                    const ExecOptions& opts) {
  return default_session_->Query(sql, opts);
}

Result<PlanResult> Database::OptimizerOrder(const BoundQuery& query) {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  SKINNER_ASSIGN_OR_RETURN(QueryInfo info, QueryInfo::Analyze(query));
  Estimator estimator(&stats_);
  return OptimizeWithEstimates(info, query, &estimator);
}

Result<QueryOutput> Database::RunSelect(const BoundQuery& query,
                                        const ExecOptions& opts) {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  QueryPipeline pipeline(&catalog_, &udfs_, &stats_, &cache_,
                         scheduler_.get());
  SKINNER_ASSIGN_OR_RETURN(PreparedStage prep,
                           pipeline.PrepareExternal(&query, opts));
  SKINNER_ASSIGN_OR_RETURN(ExecutedStage exec, pipeline.Execute(prep, opts));
  return pipeline.PostProcess(prep, std::move(exec));
}

std::vector<Result<QueryOutput>> Database::QueryBatch(
    const std::vector<BatchItem>& items, const BatchOptions& opts) {
  return default_session_->QueryBatch(items, opts);
}

std::vector<Result<QueryOutput>> Database::QueryBatchInternal(
    const std::vector<BatchItem>& items, const BatchOptions& bopts) {
  const size_t n = items.size();
  // Prepared-state sharing scope: the database's cross-query cache, or a
  // cache that lives exactly as long as this batch. (Capacity never gates
  // within-batch sharing either way: template-group members bind to the
  // owner's handle directly in stage C.)
  PreparedCache local_cache;
  PreparedCache* cache = bopts.use_prepared_cache ? &cache_ : &local_cache;
  Scheduler* sched =
      bopts.scheduler != nullptr ? bopts.scheduler : scheduler_.get();
  QueryPipeline pipeline(&catalog_, &udfs_, &stats_, cache, sched);

  std::vector<std::optional<Result<QueryOutput>>> results(n);
  std::vector<std::optional<BoundStage>> bound(n);
  std::vector<ExecOptions> eopts(n);

  // One template group per distinct (signature, prepare variant): the
  // first item owns the group and pays the one pre-processing build;
  // every other member executes over the owner's shared artifact.
  struct Group {
    size_t owner;
    std::string signature;
    std::vector<int> warm_order;  // snapshot, pre-batch (deterministic)
    PreparedHandle handle;        // set by stage B
  };
  std::unordered_map<std::string, Group> groups;  // key -> group
  std::vector<std::string> item_key(n);
  std::vector<const std::string*> owner_keys;  // first-seen order

  // Stage A (sequential): parse + bind every item. Binding interns string
  // literals into the shared pool, which is append-only but not
  // thread-safe — and it is orders of magnitude cheaper than
  // prepare/execute, which do run concurrently below. Grouping (and the
  // warm-start snapshot) happens here, before anything executes, so which
  // item pays the build and which UCT hint every item sees are fixed
  // deterministically — independent of worker count and schedule.
  for (size_t i = 0; i < n; ++i) {
    eopts[i] = items[i].opts;
    eopts[i].use_prepared_cache = true;  // within-batch sharing is the point
    if (bopts.derive_item_seeds) {
      eopts[i].seed = HashMix64(bopts.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    }
    auto stmt = pipeline.Parse(items[i].sql);
    if (!stmt.ok()) {
      results[i] = stmt.status();
      continue;
    }
    auto b = pipeline.Bind(stmt.MoveValue());
    if (!b.ok()) {
      results[i] = b.status();
      continue;
    }
    std::string signature = ComputeQuerySignature(*b.value().query);
    item_key[i] = PreparedCacheKey(signature, eopts[i].build_hash_indexes);
    auto [it, inserted] = groups.emplace(item_key[i], Group{});
    if (inserted) {
      it->second.owner = i;
      it->second.warm_order = cache->WarmOrder(signature);
      it->second.signature = std::move(signature);
      owner_keys.push_back(&it->first);
    }
    bound[i] = b.MoveValue();
  }

  const int workers =
      static_cast<int>(std::min<size_t>(std::max(bopts.num_workers, 1), n));

  // Stage B (parallel): one prepare per group, run by the owner. Groups
  // are distinct map entries, so concurrent writes to their fields are
  // race-free (the map's structure is frozen after stage A). Workers are
  // participation slots on the database's shared pool — nothing is spun up
  // per call, and concurrent batches share one set of threads.
  std::vector<std::optional<PreparedStage>> prepared(n);
  SchedParallelFor(sched, owner_keys.size(), workers, [&](size_t g) {
    Group& group = groups.find(*owner_keys[g])->second;
    const size_t i = group.owner;
    auto prep = pipeline.Prepare(std::move(*bound[i]), eopts[i]);
    if (!prep.ok()) {
      results[i] = prep.status();
      return;
    }
    group.handle = prep.value().shared;
    prepared[i] = prep.MoveValue();
  });

  // Stage C (parallel): execute + post-process every item. Members bind
  // directly to their owner's artifact handle — no cache round-trip, so
  // sharing cannot be broken by LRU eviction inside large batches.
  SchedParallelFor(sched, n, workers, [&](size_t i) {
    if (results[i].has_value()) return;  // parse/bind/prepare error
    if (!prepared[i].has_value()) {
      const Group& group = groups.find(item_key[i])->second;
      if (group.handle == nullptr) {
        // The owner's prepare failed; every member fails identically.
        results[i] = results[group.owner].has_value() &&
                             !results[group.owner]->ok()
                         ? Result<QueryOutput>(results[group.owner]->status())
                         : Result<QueryOutput>(
                               Status::Internal("group prepare failed"));
        return;
      }
      prepared[i] = pipeline.RebindStage(group.handle, group.signature);
    }
    if (eopts[i].warm_start) {
      prepared[i]->warm_order = groups.find(item_key[i])->second.warm_order;
    } else {
      prepared[i]->warm_order.clear();
    }
    auto exec = pipeline.Execute(*prepared[i], eopts[i]);
    if (!exec.ok()) {
      results[i] = exec.status();
      return;
    }
    results[i] = pipeline.PostProcess(*prepared[i], exec.MoveValue());
    prepared[i].reset();  // release the artifact handle promptly
  });

  std::vector<Result<QueryOutput>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(results[i].has_value()
                      ? std::move(*results[i])
                      : Result<QueryOutput>(
                            Status::Internal("batch item not executed")));
  }
  return out;
}

}  // namespace skinner
