#ifndef SKINNER_API_QUERY_PIPELINE_H_
#define SKINNER_API_QUERY_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/clock.h"
#include "exec/prepared_cache.h"

namespace skinner {

/// Output of the bind stage: the fully resolved query. The cache identity
/// (normalized signature + per-table data-version stamps) is derived from
/// it on demand — by Prepare() when caching is on, and by QueryBatch for
/// grouping — so the default uncached path pays no serialization.
struct BoundStage {
  std::unique_ptr<BoundQuery> query;
};

/// Output of the prepare stage: the shared pre-processing artifact bundle
/// plus everything per-execution — the virtual clock this execution ticks,
/// the wall-clock stopwatch, and the warm-start hint. Movable; `pq` points
/// at `clock`, which lives on the heap exactly so moves keep it stable.
struct PreparedStage {
  PreparedHandle shared;               // keeps bound/info/data alive
  std::unique_ptr<PreparedQuery> pq;   // per-execution view
  std::unique_ptr<VirtualClock> clock;
  Stopwatch watch;
  std::string signature;               // empty: not cacheable (external query)
  bool cache_hit = false;
  uint64_t preprocess_cost = 0;        // 0 on a cache hit
  std::vector<int> warm_order;         // UCT warm-start hint (may be empty)
  /// A warm-start order keyed by the template signature existed in the
  /// cache (reported even when opts.warm_start leaves it unused).
  bool template_hit = false;
  /// Per-table artifact provenance (filled by the PreparedStatement path;
  /// the bundle path reports all-or-nothing).
  int tables_from_cache = 0;
  int tables_reprepared = 0;
  /// Artifact bytes this prepare published into the cross-query cache
  /// (0 on hits and when ExecOptions::cache_read_only withheld publishes).
  uint64_t cache_bytes_published = 0;
};

/// Output of the execute stage: the join result in position space plus the
/// engine's counters. Post-processing turns it into the final rows.
struct ExecutedStage {
  std::unique_ptr<ResultSet> join_result;
  ExecutionStats stats;
};

/// The staged SELECT pipeline (paper Figure 2, plus parse/bind):
///
///   parse -> bind -> prepare -> execute -> post-process
///
/// Each stage consumes the previous stage's context object, so callers can
/// run the stages back to back (Run(), which is what Database::Query does)
/// or interleave the stages of many queries: Database::QueryBatch binds
/// all items sequentially (string-literal interning mutates the shared
/// pool), then prepares one artifact per distinct signature and executes
/// all items concurrently against the shared artifacts.
///
/// The pipeline object itself is stateless apart from the injected
/// components and is cheap to construct; Execute/PostProcess only touch
/// thread-safe or per-stage state, so any number of pipelines over the
/// same database may run prepare/execute/post-process stages in parallel.
class QueryPipeline {
 public:
  /// `scheduler` hosts the pipeline's parallel work (parallel
  /// pre-processing; Skinner-C worker-thread leases). Null runs all of it
  /// inline/unleased — correct but unarbitrated; Database always passes
  /// its own scheduler. Per-call ExecOptions::scheduler overrides it.
  QueryPipeline(Catalog* catalog, const UdfRegistry* udfs,
                StatsManager* stats, PreparedCache* cache,
                Scheduler* scheduler = nullptr);

  /// Stage 1: SQL text -> parsed statement (must be a SELECT).
  Result<Statement> Parse(const std::string& sql) const;

  /// Stage 2: parsed SELECT -> bound query. Interns string literals into
  /// the catalog's pool (not thread-safe; serialize bind stages).
  Result<BoundStage> Bind(Statement stmt) const;

  /// Stage 3: bound query -> prepared stage. With opts.use_prepared_cache,
  /// serves repeated signatures from the PreparedCache (preprocess_cost 0)
  /// and registers fresh artifacts for reuse; invalidation is by table
  /// data-version stamps. Concurrent Prepares of one signature coordinate
  /// through the cache's in-flight build registry: one caller builds, the
  /// rest block and share its artifact. Thread-safe. Parameterized
  /// templates (num_params > 0) are rejected — only
  /// PreparedStatement::Execute may run those.
  Result<PreparedStage> Prepare(BoundStage bound, const ExecOptions& opts) const;

  /// Stage 3 for an externally owned BoundQuery (Database::RunSelect):
  /// always prepares fresh, never caches (the cache must own its bundles).
  Result<PreparedStage> PrepareExternal(const BoundQuery* query,
                                        const ExecOptions& opts) const;

  /// Stage 3 from an already shared bundle: a hit-style stage (no
  /// filtering, preprocess_cost 0) over `handle`'s artifact. QueryBatch
  /// hands every template-group member its owner's bundle this way, so
  /// sharing inside a batch never depends on cache capacity or eviction
  /// order. The handle must own its query (it came from Prepare).
  PreparedStage RebindStage(PreparedHandle handle,
                            std::string signature) const;

  /// Stage 4: runs the chosen engine over the prepared artifact; fills the
  /// engine counters. Records Skinner-C's final order as the signature's
  /// warm-start hint. Thread-safe across distinct PreparedStages.
  Result<ExecutedStage> Execute(const PreparedStage& prep,
                                const ExecOptions& opts) const;

  /// Stage 5: post-processes the join result into final rows and closes
  /// the books (total cost, wall time, cache provenance).
  Result<QueryOutput> PostProcess(const PreparedStage& prep,
                                  ExecutedStage exec) const;

  /// All five stages back to back.
  Result<QueryOutput> Run(const std::string& sql,
                          const ExecOptions& opts) const;

 private:
  Result<PreparedStage> PrepareFresh(std::unique_ptr<BoundQuery> owned_query,
                                     const BoundQuery* query,
                                     const ExecOptions& opts) const;

  Scheduler* EffectiveScheduler(const ExecOptions& opts) const {
    return opts.scheduler != nullptr ? opts.scheduler : scheduler_;
  }

  Catalog* catalog_;
  const UdfRegistry* udfs_;
  StatsManager* stats_;
  PreparedCache* cache_;   // may be null: caching disabled
  Scheduler* scheduler_;   // may be null: inline parallel work
};

}  // namespace skinner

#endif  // SKINNER_API_QUERY_PIPELINE_H_
