#ifndef SKINNER_API_PREPARED_STATEMENT_H_
#define SKINNER_API_PREPARED_STATEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/session.h"

namespace skinner {

struct PreparedStage;

/// A `?`-parameterized SELECT template, parsed and bound once by
/// Session::Prepare and executed many times with concrete values — the
/// driver-style surface that makes SkinnerDB's template-level learning an
/// API guarantee instead of an exact-SQL-string accident:
///
///  - Warm-started UCT: the template's signature abstracts parameters
///    into typed slots, so execution #2 with *different* constants still
///    seeds its UCT priors from execution #1's final join order (paper
///    4.2/4.5: learned order quality transfers across the template).
///  - Per-table artifact sharing: each execution keys every FROM table's
///    pre-processing artifact by exactly the parameter values reaching
///    that table's unary filters. Tables whose filters mention no `?`
///    share one filtered+indexed artifact across all parameter sets;
///    param-filtered tables re-prepare just themselves. The per-table
///    provenance is reported in ExecutionStats
///    (tables_prepared_from_cache / tables_reprepared).
///
/// Execution semantics are value-substitution: Execute({v0, v1, ...})
/// returns rows bit-identical to Query() on the SQL text with the values
/// spliced in as literals. NULL binds anywhere; a value whose type class
/// (string vs numeric) contradicts the slot's inferred type — or the
/// substituted expression tree's re-typecheck — yields an error Status.
///
/// A statement may also wrap a `?`-parameterized UPDATE or DELETE (the
/// only way to run parameterized DML — Database::Execute rejects `?`).
/// Mutation executions take the database's DDL lock exclusively, apply
/// and WAL-log the change, and return one `rows_affected` row; none of
/// the SELECT-side caching machinery above applies.
///
/// Thread-safety: like a driver statement handle, one execution at a
/// time per statement (string parameters intern into the shared pool);
/// use Session::ExecuteBatch for concurrency — it serializes binding and
/// parallelizes execution.
class PreparedStatement {
 public:
  PreparedStatement(const PreparedStatement&) = delete;
  PreparedStatement& operator=(const PreparedStatement&) = delete;
  ~PreparedStatement();

  const std::string& sql() const { return sql_; }
  /// The parameter-abstracted template signature (warm-start cache key).
  const std::string& template_signature() const { return template_sig_; }

  int num_params() const;
  /// The inferred type of parameter `i` (kInt64 when no context inferred
  /// one; see param_type_known).
  DataType param_type(int i) const;
  bool param_type_known(int i) const;

  /// Executes the template with `params` bound, under the session's
  /// default options.
  Result<QueryOutput> Execute(const std::vector<Value>& params = {});
  /// Executes under explicit options (the session id is still folded into
  /// the seed; prepared-artifact caching is always on for statements).
  Result<QueryOutput> Execute(const std::vector<Value>& params,
                              const ExecOptions& opts);

 private:
  friend class Session;

  PreparedStatement(Session* session, std::string sql,
                    std::unique_ptr<BoundQuery> template_query);
  PreparedStatement(Session* session, std::string sql,
                    std::unique_ptr<BoundMutation> mutation);

  /// Post-bind analysis: template signature, per-table parameter sets,
  /// table identities for staleness checks.
  Status Init();

  /// Arity + inferred-type-class validation of one parameter set.
  Status CheckParams(const std::vector<Value>& params) const;

  /// The template's FROM tables must still exist unchanged (a DROP or
  /// re-CREATE since Prepare leaves dangling Table pointers otherwise).
  Status CheckFreshness() const;

  /// Builds the per-execution stage: substitutes params into a clone of
  /// the template, acquires/builds per-table artifacts through the cache,
  /// and assembles a PreparedStage for the pipeline's execute stage.
  Result<PreparedStage> PrepareStage(const std::vector<Value>& params,
                                     const ExecOptions& opts) const;

  /// Batch core used by Session::ExecuteBatch: sequential prepare (string
  /// interning + artifact builds), concurrent execute/post-process.
  std::vector<Result<QueryOutput>> ExecuteMany(
      const std::vector<std::vector<Value>>& param_sets,
      const BatchOptions& bopts, const ExecOptions& base_opts);

  /// The DML execution core (caller-agnostic parts shared by Execute and
  /// ExecuteMany's rejection path).
  Result<QueryOutput> ExecuteMutation(const std::vector<Value>& params);

  Session* const session_;
  Database* const db_;
  const std::string sql_;
  /// Exactly one of template_ (SELECT) / mutation_ (UPDATE/DELETE) is set.
  std::unique_ptr<BoundQuery> template_;
  std::unique_ptr<BoundMutation> mutation_;
  std::string template_sig_;
  /// Per FROM table: the sorted ordinals of parameters appearing in that
  /// table's unary predicates (the values that key its artifact).
  std::vector<std::vector<int>> table_params_;
  /// Table identities at prepare time, for staleness detection.
  std::vector<std::string> table_names_;
  std::vector<const Table*> table_ptrs_;
  std::vector<uint64_t> table_ids_;
};

}  // namespace skinner

#endif  // SKINNER_API_PREPARED_STATEMENT_H_
