#include "skinner/skinner_g.h"

#include <algorithm>

namespace skinner {

int PyramidTimeoutScheme::NextLevel() {
  // L <- max{ L | forall l < L : n_l >= n_L + 2^L } (paper Algorithm 1).
  int best = 0;
  for (int L = 1; L < 63; ++L) {
    uint64_t nL = static_cast<size_t>(L) < n_.size() ? n_[static_cast<size_t>(L)] : 0;
    uint64_t need = nL + (1ull << L);
    bool ok = true;
    for (int l = 0; l < L; ++l) {
      uint64_t nl = static_cast<size_t>(l) < n_.size() ? n_[static_cast<size_t>(l)] : 0;
      if (nl < need) {
        ok = false;
        break;
      }
    }
    if (ok) best = L;
  }
  if (n_.size() <= static_cast<size_t>(best)) n_.resize(static_cast<size_t>(best) + 1, 0);
  n_[static_cast<size_t>(best)] += (1ull << best);
  return best;
}

SkinnerGEngine::SkinnerGEngine(const PreparedQuery* pq,
                               const SkinnerGOptions& opts)
    : pq_(pq), opts_(opts) {
  const int m = pq->num_tables();
  batch_size_.resize(static_cast<size_t>(m));
  num_batches_.resize(static_cast<size_t>(m));
  batches_done_.assign(static_cast<size_t>(m), 0);
  for (int t = 0; t < m; ++t) {
    int64_t card = pq->cardinality(t);
    int64_t bs = std::max<int64_t>(
        1, (card + opts.batches_per_table - 1) / opts.batches_per_table);
    batch_size_[static_cast<size_t>(t)] = bs;
    num_batches_[static_cast<size_t>(t)] = card == 0 ? 0 : (card + bs - 1) / bs;
  }
  if (pq->trivially_empty()) finished_ = true;
}

JoinOrderUct* SkinnerGEngine::TreeFor(int level) {
  auto it = trees_.find(level);
  if (it != trees_.end()) return it->second.get();
  UctOptions u;
  u.explore_weight = opts_.uct_weight;
  u.policy = opts_.policy;
  u.seed = opts_.seed + static_cast<uint64_t>(level) * 7919;
  auto tree = std::make_unique<JoinOrderUct>(&pq_->info(), u);
  JoinOrderUct* ptr = tree.get();
  trees_.emplace(level, std::move(tree));
  return ptr;
}

std::vector<int64_t> SkinnerGEngine::MinPositions() const {
  std::vector<int64_t> min_pos(batches_done_.size());
  for (size_t t = 0; t < batches_done_.size(); ++t) {
    min_pos[t] = std::min<int64_t>(batches_done_[t] * batch_size_[t],
                                   pq_->cardinality(static_cast<int>(t)));
  }
  return min_pos;
}

bool SkinnerGEngine::Step(uint64_t until, ResultSet* out) {
  VirtualClock* clock = pq_->clock();
  // Termination: all batches of one table processed (Algorithm 1 line 17).
  for (size_t t = 0; t < batches_done_.size(); ++t) {
    if (batches_done_[t] >= num_batches_[t]) {
      finished_ = true;
      return true;
    }
  }
  int level = pyramid_.NextLevel();
  stats_.max_level_used = std::max(stats_.max_level_used, level);
  uint64_t timeout = (1ull << level) * opts_.timeout_unit;
  uint64_t iter_deadline = std::min(clock->now() + timeout, until);

  JoinOrderUct* tree = TreeFor(level);
  std::vector<int> order = tree->Choose();
  int leftmost = order[0];

  ForcedExecOptions fo;
  fo.min_pos = MinPositions();
  fo.left_from = batches_done_[static_cast<size_t>(leftmost)] *
                 batch_size_[static_cast<size_t>(leftmost)];
  fo.left_to = std::min<int64_t>(
      fo.left_from + batch_size_[static_cast<size_t>(leftmost)],
      pq_->cardinality(leftmost));
  fo.deadline = iter_deadline;

  // The black-box engine buffers results; commit only on success (timed-out
  // partial results cannot be trusted or reused — paper Section 4.3).
  std::vector<PosTuple> scratch;
  ForcedExecResult r;
  if (opts_.engine == GenericEngineKind::kVolcano) {
    r = ExecuteVolcano(*pq_, order, fo, &scratch);
  } else {
    BlockExecOptions bo;
    static_cast<ForcedExecOptions&>(bo) = fo;
    r = ExecuteBlock(*pq_, order, bo, &scratch);
  }
  ++stats_.iterations;
  if (r.completed) {
    ++stats_.successes;
    batches_done_[static_cast<size_t>(leftmost)] += 1;
    for (const auto& tup : scratch) out->Append(tup);
    tree->RewardUpdate(order, 1.0);
  } else {
    tree->RewardUpdate(order, 0.0);
  }
  stats_.level_time = pyramid_.level_time();
  for (size_t t = 0; t < batches_done_.size(); ++t) {
    if (batches_done_[t] >= num_batches_[t]) finished_ = true;
  }
  return finished_;
}

bool SkinnerGEngine::RunUntil(uint64_t until, ResultSet* out) {
  VirtualClock* clock = pq_->clock();
  while (!finished_ && clock->now() < until) {
    if (clock->now() >= opts_.deadline) {
      stats_.timed_out = true;
      break;
    }
    Step(std::min(until, opts_.deadline), out);
  }
  return finished_;
}

Status SkinnerGEngine::Run(ResultSet* out) {
  RunUntil(opts_.deadline, out);
  if (!finished_ && pq_->clock()->now() >= opts_.deadline) {
    stats_.timed_out = true;
  }
  return Status::OK();
}

}  // namespace skinner
