#include "skinner/skinner_h.h"

#include <algorithm>

namespace skinner {

SkinnerHEngine::SkinnerHEngine(const PreparedQuery* pq,
                               std::vector<int> optimizer_order,
                               const SkinnerHOptions& opts)
    : pq_(pq),
      optimizer_order_(std::move(optimizer_order)),
      opts_(opts),
      learner_(pq, opts.g) {}

Status SkinnerHEngine::Run(ResultSet* out) {
  VirtualClock* clock = pq_->clock();
  if (pq_->trivially_empty()) return Status::OK();

  for (uint64_t round = 0;; ++round) {
    if (clock->now() >= opts_.deadline) {
      stats_.timed_out = true;
      break;
    }
    uint64_t slice = opts_.unit << std::min<uint64_t>(round, 40);

    // Traditional optimizer plan on the remaining tuples (learning-side
    // batches removed), with timeout; partial results are discarded.
    {
      ForcedExecOptions fo;
      fo.min_pos = learner_.MinPositions();
      fo.deadline = std::min(clock->now() + slice, opts_.deadline);
      std::vector<PosTuple> scratch;
      ForcedExecResult r;
      if (opts_.g.engine == GenericEngineKind::kVolcano) {
        r = ExecuteVolcano(*pq_, optimizer_order_, fo, &scratch);
      } else {
        BlockExecOptions bo;
        static_cast<ForcedExecOptions&>(bo) = fo;
        r = ExecuteBlock(*pq_, optimizer_order_, bo, &scratch);
      }
      ++stats_.optimizer_rounds;
      if (r.completed) {
        for (const auto& tup : scratch) out->Append(tup);
        stats_.finished_by_optimizer = true;
        break;
      }
    }
    if (clock->now() >= opts_.deadline) {
      stats_.timed_out = true;
      break;
    }

    // Learning side gets the same amount of (virtual) time.
    bool finished = learner_.RunUntil(
        std::min(clock->now() + slice, opts_.deadline), out);
    if (finished) break;
  }
  stats_.g_stats = learner_.stats();
  if (clock->now() >= opts_.deadline && !stats_.finished_by_optimizer &&
      !learner_.finished()) {
    stats_.timed_out = true;
  }
  return Status::OK();
}

}  // namespace skinner
