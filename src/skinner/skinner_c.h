#ifndef SKINNER_SKINNER_SKINNER_C_H_
#define SKINNER_SKINNER_SKINNER_C_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/scheduler.h"
#include "engine/multiway_join.h"
#include "exec/result_set.h"
#include "skinner/progress.h"
#include "uct/uct.h"

namespace skinner {

/// Reward functions for Skinner-C time slices (paper 4.5).
enum class RewardKind {
  /// Sum over join-order positions of the position delta scaled by the
  /// product of this and all preceding cardinalities (the paper's refined
  /// reward; default in SkinnerDB).
  kWeightedProgress,
  /// Fraction of the leftmost table processed during the slice (the
  /// simpler variant used in the formal analysis, Section 5.2).
  kLeftmostFraction,
};

/// Work distribution across search workers when num_threads > 1.
enum class ParallelMode {
  /// Dynamic chunk queue with work stealing plus shared offset publication
  /// (default): each table's leftmost range is cut into many small chunks;
  /// workers claim chunks from their own block and steal from laggards'
  /// blocks when it drains, and per-chunk completed offsets are published
  /// through SharedProgress so any worker's descend skips ranges any
  /// worker already exhausted.
  kChunkStealing,
  /// PR-2 static per-table stripes. Kept as the regression baseline the
  /// benchmarks compare against: skew idles workers late in a query and
  /// T>1 descends rescan from offset 0.
  kStaticStripe,
};

struct SkinnerCOptions {
  /// Time slice budget b: outer-loop iterations of the multiway join per
  /// slice (paper default 500).
  int64_t slice_budget = 500;
  /// UCT exploration weight (paper uses 1e-6 for Skinner-C, whose rewards
  /// are small fractions).
  double uct_weight = 1e-6;
  SelectionPolicy policy = SelectionPolicy::kUct;
  RewardKind reward = RewardKind::kWeightedProgress;
  uint64_t seed = 42;
  /// Absolute virtual-clock deadline; the run aborts past it (used by the
  /// failure/disaster benchmarks to censor runaway baselines).
  uint64_t deadline = UINT64_MAX;
  /// Record per-slice convergence data (paper Figure 7); costs memory.
  bool collect_trace = false;
  /// Search-parallel Skinner-C (paper Section 4.4): each slice, all worker
  /// threads execute the same UCT-selected order on disjoint pieces of the
  /// leftmost table, rewards are merged (averaged) into the one shared
  /// tree, and the exported result is exact and identical (in canonical
  /// order) for any thread count. 1 = sequential.
  int num_threads = 1;
  /// How leftmost work is split across workers (ignored for 1 thread).
  ParallelMode parallel_mode = ParallelMode::kChunkStealing;
  /// Chunk-stealing granularity: each table is cut into about
  /// chunks_per_thread * num_threads chunks...
  int chunks_per_thread = 8;
  /// ...but never into chunks smaller than this many positions, so claim
  /// and publication overhead stays negligible per chunk.
  int64_t min_chunk_rows = 16;
  /// Chunk-stealing claim window: each slice serves at most
  /// claim_window_per_worker * num_threads incomplete chunks, taken in
  /// position order from the table's completion frontier. Serving from
  /// the frontier keeps the published completed prefix contiguous (so
  /// other orders' descents skip it) and preserves the sequential
  /// engine's learning signal: a freshly explored leftmost table must
  /// grind its frontier — on skew, the expensive front — instead of
  /// harvesting easy rewards from cheap chunks anywhere in the table,
  /// which made UCT flip between leftmost tables and re-derive every
  /// table's expensive region. <= 0 serves every incomplete chunk.
  int claim_window_per_worker = 2;
  /// Warm start (PreparedCache): seed the UCT tree's priors along this
  /// join order — typically the final order the signature's last execution
  /// converged to — before the first slice. The hinted path starts as the
  /// exploit choice; a few unrewarded slices un-seat a stale hint (see
  /// JoinOrderUct::SeedPriors). Empty = cold start. Learning remains
  /// per-execution, consistent with the paper.
  std::vector<int> warm_start_order;
  /// Prior strength: the hint behaves like warm_start_visits slices of
  /// reward warm_start_reward already run. The reward is deliberately tiny
  /// (the scale of real per-slice progress rewards) so genuine rewards
  /// dominate quickly.
  int64_t warm_start_visits = 2;
  double warm_start_reward = 1e-3;
  /// Global thread arbitration: with a scheduler and num_threads > 1, the
  /// engine leases its worker count from the scheduler's engine-thread
  /// budget and runs with the granted number (>= 1) — under concurrent
  /// load an engine degrades to fewer workers instead of oversubscribing
  /// the machine. Results are bit-identical for any granted count (the
  /// num_threads invariance above), so arbitration changes latency only.
  /// Null keeps num_threads as requested.
  Scheduler* scheduler = nullptr;
};

struct SkinnerCStats {
  uint64_t slices = 0;
  size_t uct_nodes = 0;
  size_t progress_nodes = 0;
  uint64_t result_tuples = 0;
  /// Accumulated intermediate tuples produced (C_out actually paid),
  /// comparable to the traditional engines' counter (paper Tables 1/2).
  uint64_t intermediate_tuples = 0;
  bool timed_out = false;
  /// Adaptive chunk splits performed on the shared progress board (chunk
  /// stealing only): skew-dominated leftmost chunks subdivided so the
  /// endgame keeps every worker busy.
  uint64_t chunk_splits = 0;
  /// Sum of every worker's private clock (T>1; equals the join cost at
  /// T=1). busy / (T * join cost) is parallel efficiency: the gap to 1 is
  /// workers idling at slice barriers while a straggler finishes.
  uint64_t worker_busy_cost = 0;
  std::vector<int> final_order;
  /// Sampled (slice, materialized UCT nodes) pairs; trace only.
  std::vector<std::pair<uint64_t, size_t>> tree_growth;
  /// Slice count per distinct join order chosen; trace only.
  std::map<std::vector<int>, uint64_t> order_selections;
  /// Bytes held in result set (exact — the flat ResultSet tracks its own
  /// footprint) plus estimated progress-tree and UCT-tree node costs.
  size_t auxiliary_bytes = 0;
  /// Per-slice auxiliary_bytes samples (trace only). Monotone
  /// non-decreasing: all three structures are append-only.
  std::vector<size_t> aux_bytes_trace;
};

/// Skinner-C (paper Section 4.5, Algorithms 2+3): regret-bounded query
/// evaluation on a customized engine. Drives the shared
/// engine/multiway_join step loop in small slices; a UCT policy picks the
/// join order per slice; per-table tuple offsets plus a shared-prefix
/// progress tree preserve and share progress across orders; rewards
/// measure per-slice progress. With num_threads > 1 the leftmost table's
/// range is partitioned across search workers (paper 4.4), by default
/// through a stealable chunk queue with shared offset publication.
class SkinnerCEngine {
 public:
  SkinnerCEngine(const PreparedQuery* pq, const SkinnerCOptions& opts);
  ~SkinnerCEngine();
  SkinnerCEngine(const SkinnerCEngine&) = delete;
  SkinnerCEngine& operator=(const SkinnerCEngine&) = delete;

  /// Runs to completion (or deadline); appends result position tuples in
  /// canonical (lexicographically sorted) order — bit-identical for any
  /// num_threads, parallel mode, or thread schedule.
  Status Run(ResultSet* out);

  const SkinnerCStats& stats() const { return stats_; }

 private:
  /// One search worker. Sequential execution is the T=1 special case whose
  /// single worker owns every full range. The stripe/offset/progress
  /// members carry per-worker state for the sequential and static-stripe
  /// paths; under chunk stealing the equivalent state lives per chunk in
  /// the shared board and workers keep only cursors, clock, and the
  /// private result sink.
  struct Worker {
    int id = 0;
    std::vector<int64_t> stripe_lo;  // per table
    std::vector<int64_t> stripe_hi;  // per table
    std::vector<int64_t> offset;     // per table: first not-fully-joined pos
    ProgressTree progress;
    std::map<std::vector<int>, std::unique_ptr<JoinCursor>> cursors;
    VirtualClock clock;         // local; merged into the shared clock
    uint64_t merged_clock = 0;  // portion of `clock` already merged
    JoinLoopStats loop_stats;
    double slice_reward = 0;
    bool slice_done = false;
    /// Chunk stealing: worker-private result sink (no locks on the emit
    /// path); merged sorted-unique across workers at export.
    ResultSet local;

    explicit Worker(int num_tables)
        : progress(num_tables), local(num_tables) {}
  };

  bool stealing() const {
    return workers_.size() > 1 &&
           opts_.parallel_mode == ParallelMode::kChunkStealing;
  }

  void InitWorkers();
  JoinCursor* CursorFor(Worker* w, const std::vector<int>& order);
  VirtualClock* WorkerClock(Worker* w);

  /// Resume state for `order` on `w`'s stripe: stored progress
  /// fast-forwarded past the worker's offsets, or a fresh start.
  JoinState RestoreState(Worker* w, const std::vector<int>& order,
                         JoinCursor* cursor);

  /// Executes one budgeted slice of `order` on `w`'s stripe via the shared
  /// multiway-join loop; records the slice reward and completion flag.
  /// Sequential (T=1) and static-stripe path.
  void RunWorkerSlice(Worker* w, const std::vector<int>& order);

  // ---- Chunk-stealing path (default for T > 1) ----

  /// Adaptive chunk splitting (the skew endgame): when the slice's
  /// leftmost table has fewer incomplete chunks than workers, repeatedly
  /// split the hottest splittable chunk — heat is the steps workers spent
  /// in it, the signal that one chunk is eating the budget — until every
  /// worker can hold a chunk or nothing splittable remains. Runs at the
  /// slice barrier (workers parked), the only point where board mutation
  /// is legal.
  void AdaptiveSplit(int leftmost_table);

  /// Rebuilds the per-slice work list: the still-incomplete chunks of
  /// `order`'s leftmost table, cut into contiguous per-worker blocks.
  void BuildSliceWork(int leftmost_table);

  /// Claims the next chunk for `w`: from its own block first, then — when
  /// its block has drained — stealing from the other workers' blocks.
  /// Returns the chunk id, or -1 when no unclaimed work remains.
  int ClaimChunk(Worker* w);

  /// Runs one claimed chunk of `order` until the chunk's leftmost range is
  /// exhausted or `*budget_left` runs out; publishes completed offsets,
  /// stores the suspension in the chunk's progress tree, and returns the
  /// chunk's reward-potential increase.
  double RunChunk(Worker* w, const std::vector<int>& order, int chunk_id,
                  int64_t* budget_left);

  /// Resume state for `order` on one shared chunk: the chunk's stored
  /// progress fast-forwarded past its published offset and all published
  /// completed ranges of the deeper tables, or a fresh start at the
  /// chunk's offset.
  JoinState RestoreChunkState(int chunk_id, const std::vector<int>& order,
                              JoinCursor* cursor);

  /// Worker slice under stealing: claim chunks (own block, then steal)
  /// until the slice budget is spent or no work remains.
  void RunWorkerSliceStealing(Worker* w, const std::vector<int>& order);

  double ProgressValue(const Worker& w, const std::vector<int>& order,
                       const JoinState& state) const;

  /// The slice reward potential of `state` under opts_.reward; the reward
  /// is the clamped increase of this potential over the slice.
  double RewardPotential(const Worker& w, const std::vector<int>& order,
                         const JoinState& state) const;

  /// True once some table is fully joined as a leftmost table (=> result
  /// complete): all stripes consumed, or all chunks published complete.
  bool CompletedTable() const;

  size_t AuxiliaryBytes() const;

  // Parallel machinery (num_threads > 1): a persistent worker pool with a
  // per-slice barrier, so UCT updates and clock merges stay deterministic.
  void StartThreads();
  void StopThreads();
  void DispatchSlice(const std::vector<int>& order);
  void WorkerMain(Worker* w);

  const PreparedQuery* pq_;
  /// Declared before opts_: the lease is taken first and opts_ is the
  /// options clamped to its grant (member init order is declaration order).
  ThreadLease lease_;
  SkinnerCOptions opts_;
  JoinOrderUct uct_;
  ResultSet result_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<int64_t> zero_lower_;  // descend lower bounds when T > 1
  SkinnerCStats stats_;
  bool finished_ = false;

  /// Chunk-stealing shared state: the chunk/offset publication board, plus
  /// the per-slice work list of pending chunk ids of the slice's leftmost
  /// table. Blocks are claimed through per-worker atomic cursors; a
  /// fetch_add hands out each index exactly once, which makes claims (and
  /// steals) exclusive without locks.
  std::unique_ptr<SharedProgress> shared_;
  std::vector<int> work_ids_;
  std::unique_ptr<std::atomic<size_t>[]> work_next_;  // per worker
  std::vector<size_t> work_end_;                      // per worker block end
  int work_table_ = -1;

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int pending_ = 0;
  const std::vector<int>* slice_order_ = nullptr;
  bool shutdown_ = false;
};

}  // namespace skinner

#endif  // SKINNER_SKINNER_SKINNER_C_H_
