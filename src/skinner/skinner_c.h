#ifndef SKINNER_SKINNER_SKINNER_C_H_
#define SKINNER_SKINNER_SKINNER_C_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/multiway_join.h"
#include "exec/result_set.h"
#include "skinner/progress.h"
#include "uct/uct.h"

namespace skinner {

/// Reward functions for Skinner-C time slices (paper 4.5).
enum class RewardKind {
  /// Sum over join-order positions of the position delta scaled by the
  /// product of this and all preceding cardinalities (the paper's refined
  /// reward; default in SkinnerDB).
  kWeightedProgress,
  /// Fraction of the leftmost table processed during the slice (the
  /// simpler variant used in the formal analysis, Section 5.2).
  kLeftmostFraction,
};

struct SkinnerCOptions {
  /// Time slice budget b: outer-loop iterations of the multiway join per
  /// slice (paper default 500).
  int64_t slice_budget = 500;
  /// UCT exploration weight (paper uses 1e-6 for Skinner-C, whose rewards
  /// are small fractions).
  double uct_weight = 1e-6;
  SelectionPolicy policy = SelectionPolicy::kUct;
  RewardKind reward = RewardKind::kWeightedProgress;
  uint64_t seed = 42;
  /// Absolute virtual-clock deadline; the run aborts past it (used by the
  /// failure/disaster benchmarks to censor runaway baselines).
  uint64_t deadline = UINT64_MAX;
  /// Record per-slice convergence data (paper Figure 7); costs memory.
  bool collect_trace = false;
  /// Search-parallel Skinner-C (paper Section 4.4): worker threads own
  /// static stripes of every table's position range; each slice, all
  /// workers execute the same UCT-selected order on their stripe of the
  /// leftmost table, rewards are merged (averaged) into the one shared
  /// tree, and results land in the shared striped-lock result set. The
  /// result is exact and identical (in canonical order) for any thread
  /// count. 1 = sequential.
  int num_threads = 1;
};

struct SkinnerCStats {
  uint64_t slices = 0;
  size_t uct_nodes = 0;
  size_t progress_nodes = 0;
  uint64_t result_tuples = 0;
  /// Accumulated intermediate tuples produced (C_out actually paid),
  /// comparable to the traditional engines' counter (paper Tables 1/2).
  uint64_t intermediate_tuples = 0;
  bool timed_out = false;
  std::vector<int> final_order;
  /// Sampled (slice, materialized UCT nodes) pairs; trace only.
  std::vector<std::pair<uint64_t, size_t>> tree_growth;
  /// Slice count per distinct join order chosen; trace only.
  std::map<std::vector<int>, uint64_t> order_selections;
  /// Bytes held in result set (exact — the flat ResultSet tracks its own
  /// footprint) plus estimated progress-tree and UCT-tree node costs.
  size_t auxiliary_bytes = 0;
  /// Per-slice auxiliary_bytes samples (trace only). Monotone
  /// non-decreasing: all three structures are append-only.
  std::vector<size_t> aux_bytes_trace;
};

/// Skinner-C (paper Section 4.5, Algorithms 2+3): regret-bounded query
/// evaluation on a customized engine. Drives the shared
/// engine/multiway_join step loop in small slices; a UCT policy picks the
/// join order per slice; per-table tuple offsets plus a shared-prefix
/// progress tree preserve and share progress across orders; rewards
/// measure per-slice progress. With num_threads > 1 the leftmost table's
/// range is partitioned across search workers (paper 4.4).
class SkinnerCEngine {
 public:
  SkinnerCEngine(const PreparedQuery* pq, const SkinnerCOptions& opts);
  ~SkinnerCEngine();
  SkinnerCEngine(const SkinnerCEngine&) = delete;
  SkinnerCEngine& operator=(const SkinnerCEngine&) = delete;

  /// Runs to completion (or deadline); appends result position tuples in
  /// canonical (lexicographically sorted) order — bit-identical for any
  /// num_threads.
  Status Run(ResultSet* out);

  const SkinnerCStats& stats() const { return stats_; }

 private:
  /// One search worker: owns a static stripe [stripe_lo, stripe_hi) of
  /// every table's position range (used when that table is leftmost), plus
  /// all per-worker execution state. Sequential execution is the T=1
  /// special case whose single worker owns every full range.
  struct Worker {
    int id = 0;
    std::vector<int64_t> stripe_lo;  // per table
    std::vector<int64_t> stripe_hi;  // per table
    std::vector<int64_t> offset;     // per table: first not-fully-joined pos
    ProgressTree progress;
    std::map<std::vector<int>, std::unique_ptr<JoinCursor>> cursors;
    VirtualClock clock;         // local; merged into the shared clock
    uint64_t merged_clock = 0;  // portion of `clock` already merged
    JoinLoopStats loop_stats;
    double slice_reward = 0;
    bool slice_done = false;

    explicit Worker(int num_tables) : progress(num_tables) {}
  };

  void InitWorkers();
  JoinCursor* CursorFor(Worker* w, const std::vector<int>& order);
  VirtualClock* WorkerClock(Worker* w);

  /// Resume state for `order` on `w`'s stripe: stored progress
  /// fast-forwarded past the worker's offsets, or a fresh start.
  JoinState RestoreState(Worker* w, const std::vector<int>& order,
                         JoinCursor* cursor);

  /// Executes one budgeted slice of `order` on `w`'s stripe via the shared
  /// multiway-join loop; records the slice reward and completion flag.
  void RunWorkerSlice(Worker* w, const std::vector<int>& order);

  double ProgressValue(const Worker& w, const std::vector<int>& order,
                       const JoinState& state) const;

  /// The slice reward potential of `state` under opts_.reward; the reward
  /// is the clamped increase of this potential over the slice.
  double RewardPotential(const Worker& w, const std::vector<int>& order,
                         const JoinState& state) const;

  /// True once some table's stripes are consumed by all workers (every
  /// tuple of that table fully joined => result complete).
  bool CompletedTable() const;

  size_t AuxiliaryBytes() const;

  // Parallel machinery (num_threads > 1): a persistent worker pool with a
  // per-slice barrier, so UCT updates and clock merges stay deterministic.
  void StartThreads();
  void StopThreads();
  void DispatchSlice(const std::vector<int>& order);
  void WorkerMain(Worker* w);

  const PreparedQuery* pq_;
  SkinnerCOptions opts_;
  JoinOrderUct uct_;
  ResultSet result_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<int64_t> zero_lower_;  // descend lower bounds when T > 1
  SkinnerCStats stats_;
  bool finished_ = false;

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int pending_ = 0;
  const std::vector<int>* slice_order_ = nullptr;
  bool shutdown_ = false;
};

}  // namespace skinner

#endif  // SKINNER_SKINNER_SKINNER_C_H_
