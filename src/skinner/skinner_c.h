#ifndef SKINNER_SKINNER_SKINNER_C_H_
#define SKINNER_SKINNER_SKINNER_C_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/hash_util.h"
#include "engine/volcano.h"
#include "skinner/progress.h"
#include "uct/uct.h"

namespace skinner {

/// Reward functions for Skinner-C time slices (paper 4.5).
enum class RewardKind {
  /// Sum over join-order positions of the position delta scaled by the
  /// product of this and all preceding cardinalities (the paper's refined
  /// reward; default in SkinnerDB).
  kWeightedProgress,
  /// Fraction of the leftmost table processed during the slice (the
  /// simpler variant used in the formal analysis, Section 5.2).
  kLeftmostFraction,
};

struct SkinnerCOptions {
  /// Time slice budget b: outer-loop iterations of the multiway join per
  /// slice (paper default 500).
  int64_t slice_budget = 500;
  /// UCT exploration weight (paper uses 1e-6 for Skinner-C, whose rewards
  /// are small fractions).
  double uct_weight = 1e-6;
  SelectionPolicy policy = SelectionPolicy::kUct;
  RewardKind reward = RewardKind::kWeightedProgress;
  uint64_t seed = 42;
  /// Absolute virtual-clock deadline; the run aborts past it (used by the
  /// failure/disaster benchmarks to censor runaway baselines).
  uint64_t deadline = UINT64_MAX;
  /// Record per-slice convergence data (paper Figure 7); costs memory.
  bool collect_trace = false;
};

struct SkinnerCStats {
  uint64_t slices = 0;
  size_t uct_nodes = 0;
  size_t progress_nodes = 0;
  uint64_t result_tuples = 0;
  /// Accumulated intermediate tuples produced (C_out actually paid),
  /// comparable to the traditional engines' counter (paper Tables 1/2).
  uint64_t intermediate_tuples = 0;
  bool timed_out = false;
  std::vector<int> final_order;
  /// Sampled (slice, materialized UCT nodes) pairs; trace only.
  std::vector<std::pair<uint64_t, size_t>> tree_growth;
  /// Slice count per distinct join order chosen; trace only.
  std::map<std::vector<int>, uint64_t> order_selections;
  /// Approximate bytes held in result set + progress tree + UCT tree.
  size_t auxiliary_bytes = 0;
};

/// Skinner-C (paper Section 4.5, Algorithms 2+3): regret-bounded query
/// evaluation on a customized engine. Executes the multiway depth-first
/// join in small slices; a UCT policy picks the join order per slice;
/// per-table tuple offsets plus a shared-prefix progress tree preserve and
/// share progress across orders; rewards measure per-slice progress.
class SkinnerCEngine {
 public:
  SkinnerCEngine(const PreparedQuery* pq, const SkinnerCOptions& opts);

  /// Runs to completion (or deadline); appends result position tuples.
  Status Run(std::vector<PosTuple>* out);

  const SkinnerCStats& stats() const { return stats_; }

 private:
  /// Executes `order` from `state` until the slice budget is exhausted or
  /// the leftmost table is exhausted. Returns true if the join finished.
  bool ContinueJoin(const std::vector<int>& order, JoinCursor* cursor,
                    JoinState* state, int64_t budget);

  /// Resume state for `order`: stored progress fast-forwarded past the
  /// current offsets, or a fresh start at offset[order[0]].
  JoinState RestoreState(const std::vector<int>& order, JoinCursor* cursor);

  double ProgressValue(const std::vector<int>& order,
                       const JoinState& state) const;

  JoinCursor* CursorFor(const std::vector<int>& order);

  const PreparedQuery* pq_;
  SkinnerCOptions opts_;
  JoinOrderUct uct_;
  ProgressTree progress_;
  std::vector<int64_t> offset_;  // per table: first not-fully-joined position
  std::unordered_set<PosTuple, VectorHash> result_;
  std::map<std::vector<int>, std::unique_ptr<JoinCursor>> cursors_;
  SkinnerCStats stats_;
  bool finished_ = false;
};

}  // namespace skinner

#endif  // SKINNER_SKINNER_SKINNER_C_H_
