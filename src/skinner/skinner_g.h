#ifndef SKINNER_SKINNER_SKINNER_G_H_
#define SKINNER_SKINNER_SKINNER_G_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/block.h"
#include "engine/volcano.h"
#include "uct/uct.h"

namespace skinner {

/// Which black-box engine executes the per-batch joins.
enum class GenericEngineKind {
  kVolcano,  // Postgres stand-in: pipelined, tuple-at-a-time
  kBlock,    // MonetDB stand-in: operator-at-a-time, materializing
};

struct SkinnerGOptions {
  /// Number of batches b per table (paper Algorithm 1).
  int batches_per_table = 10;
  /// Cost units of the smallest timeout (level 0). Level L gets 2^L units.
  uint64_t timeout_unit = 2000;
  double uct_weight = 1.4142135623730951;
  SelectionPolicy policy = SelectionPolicy::kUct;
  GenericEngineKind engine = GenericEngineKind::kVolcano;
  uint64_t seed = 42;
  uint64_t deadline = UINT64_MAX;
};

struct SkinnerGStats {
  uint64_t iterations = 0;
  uint64_t successes = 0;
  int max_level_used = -1;
  bool timed_out = false;
  /// Cost units dedicated to each timeout level (paper Figure 3 / Lemma
  /// 5.5: levels stay within factor two of each other).
  std::vector<uint64_t> level_time;
};

/// The pyramid timeout scheme (paper Section 4.3, Figure 3): iterates over
/// power-of-two timeouts, always choosing the highest level whose
/// accumulated time does not exceed the time given to any lower level.
/// Exposed separately so its balance properties can be unit-tested
/// (Lemmas 5.4/5.5).
class PyramidTimeoutScheme {
 public:
  /// Returns the level L for the next iteration and charges 2^L to it.
  int NextLevel();
  /// Accumulated time (in units of 2^0) per level.
  const std::vector<uint64_t>& level_time() const { return n_; }

 private:
  std::vector<uint64_t> n_;
};

/// Skinner-G (paper Algorithm 1): join order learning on top of a generic
/// engine. Tables are partitioned into batches; each iteration joins one
/// batch of the leftmost table with the remaining (non-excluded) tables
/// under a pyramid-scheme timeout; rewards are 1 (batch finished) or 0;
/// one UCT tree per timeout level. Timed-out work is discarded — the
/// generic engine is a black box whose state cannot be saved.
class SkinnerGEngine {
 public:
  SkinnerGEngine(const PreparedQuery* pq, const SkinnerGOptions& opts);

  /// Runs to completion (or deadline); appends committed result tuples.
  Status Run(ResultSet* out);

  /// Runs until the virtual clock reaches `until` (for Skinner-H slices).
  /// Returns true if the query finished.
  bool RunUntil(uint64_t until, ResultSet* out);

  /// True once all batches of some table have been processed.
  bool finished() const { return finished_; }

  /// Current per-table exclusion bounds (positions below are processed);
  /// Skinner-H removes these tuples before traditional executions.
  std::vector<int64_t> MinPositions() const;

  const SkinnerGStats& stats() const { return stats_; }

 private:
  bool Step(uint64_t until, ResultSet* out);  // one iteration
  JoinOrderUct* TreeFor(int level);

  const PreparedQuery* pq_;
  SkinnerGOptions opts_;
  PyramidTimeoutScheme pyramid_;
  std::map<int, std::unique_ptr<JoinOrderUct>> trees_;  // per timeout level
  std::vector<int64_t> batch_size_;   // per table
  std::vector<int64_t> num_batches_;  // per table
  std::vector<int64_t> batches_done_; // per table (offset o in Algorithm 1)
  SkinnerGStats stats_;
  bool finished_ = false;
};

}  // namespace skinner

#endif  // SKINNER_SKINNER_SKINNER_G_H_
