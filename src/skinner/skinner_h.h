#ifndef SKINNER_SKINNER_SKINNER_H_H_
#define SKINNER_SKINNER_SKINNER_H_H_

#include <cstdint>
#include <vector>

#include "skinner/skinner_g.h"

namespace skinner {

struct SkinnerHOptions {
  SkinnerGOptions g;
  /// Cost units of the first traditional-optimizer slice; doubles per
  /// round (paper Section 4.4, Figure 4).
  uint64_t unit = 2000;
  uint64_t deadline = UINT64_MAX;
};

struct SkinnerHStats {
  uint64_t optimizer_rounds = 0;
  bool finished_by_optimizer = false;
  bool timed_out = false;
  SkinnerGStats g_stats;
};

/// Skinner-H (paper Section 4.4): alternates, with doubling timeouts,
/// between executing the traditional optimizer's plan and running the
/// Skinner-G learning loop; batches completed by the learning side are
/// removed from the traditional side's input, so whichever side finishes
/// first completes the query.
class SkinnerHEngine {
 public:
  /// `optimizer_order` is the plan proposed by the traditional optimizer.
  SkinnerHEngine(const PreparedQuery* pq, std::vector<int> optimizer_order,
                 const SkinnerHOptions& opts);

  Status Run(ResultSet* out);

  const SkinnerHStats& stats() const { return stats_; }

 private:
  const PreparedQuery* pq_;
  std::vector<int> optimizer_order_;
  SkinnerHOptions opts_;
  SkinnerGEngine learner_;
  SkinnerHStats stats_;
};

}  // namespace skinner

#endif  // SKINNER_SKINNER_SKINNER_H_H_
