#ifndef SKINNER_SKINNER_PROGRESS_H_
#define SKINNER_SKINNER_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/multiway_join.h"

namespace skinner {

/// Progress store for all join orders tried so far (the paper's progress
/// tracker, Figure 2). A trie over join-order prefixes; each node stores
/// the lexicographically largest frontier reached for its prefix by *any*
/// join order passing through it, which implements the paper's
/// shared-prefix fast-forwarding: a join order can resume from the most
/// advanced frontier of any order with the same prefix, because every
/// prefix combination lexicographically before that frontier has been
/// joined against all remaining tables already (suffix order irrelevant).
class ProgressTree {
 public:
  explicit ProgressTree(int num_tables) : num_tables_(num_tables) {}

  /// Records a suspended `state` for `order` (state.pos[0..depth] valid).
  /// Updates the frontier of every prefix of `order` and the exact state
  /// at the full-order node.
  void Backup(const std::vector<int>& order, const JoinState& state);

  /// Computes the most advanced resume state for `order`, considering the
  /// exact stored state and all shared-prefix frontiers. Returns false if
  /// nothing is stored (fresh start). On a frontier-based resume the
  /// frontier combination itself is re-enumerated (its subtree was in
  /// progress); the global result set deduplicates any re-emitted tuples.
  bool Restore(const std::vector<int>& order, JoinState* state) const;

  /// Number of trie nodes (paper Figure 8b).
  size_t num_nodes() const { return num_nodes_; }

 private:
  struct Node {
    std::map<int, std::unique_ptr<Node>> children;
    // Lex-max frontier for this prefix (length = prefix length).
    std::vector<int64_t> frontier;
    bool has_frontier = false;
    // Exact suspended state; only set on full-order nodes.
    JoinState exact;
    bool has_exact = false;
  };

  static bool LexLess(const std::vector<int64_t>& a,
                      const std::vector<int64_t>& b);

  int num_tables_;
  Node root_;
  size_t num_nodes_ = 1;
};

/// Shared work-distribution and offset-publication board for parallel
/// Skinner-C (replaces PR 2's static stripes). Every table's filtered
/// position range [0, cardinality) is cut into uniform chunks — the units
/// of leftmost-table work that workers claim and steal. Per chunk it
/// tracks:
///  - an atomic completed offset ("first position not yet fully joined"),
///    published by whichever worker ran the chunk and exported read-only to
///    the join loop through engine PublishedOffsets views, so ANY worker's
///    descend skips ranges ANY worker already exhausted; and
///  - a ProgressTree of suspended states keyed by join order, so a stolen
///    chunk resumes exactly where its previous owner left it, for any
///    order tried so far.
///
/// Concurrency contract: offsets are atomics (any thread, any time; they
/// only grow). A chunk's ProgressTree is owned by the single worker that
/// holds the chunk's claim; claims are handed out exclusively within a
/// slice and slices are separated by the engine's barrier, which provides
/// the happens-before edge between successive owners.
class SharedProgress {
 public:
  /// `chunk_size` per table is chosen so the table yields about
  /// `target_chunks` chunks, floored at `min_chunk_rows` rows so tiny
  /// chunks don't drown the win in claim overhead.
  SharedProgress(const std::vector<int64_t>& cardinalities, int num_tables,
                 int target_chunks, int64_t min_chunk_rows);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  int num_chunks(int t) const {
    return tables_[static_cast<size_t>(t)].num_chunks;
  }
  int64_t chunk_lo(int t, int c) const {
    const TableState& ts = tables_[static_cast<size_t>(t)];
    return ts.chunk_size * c;
  }
  int64_t chunk_hi(int t, int c) const {
    const TableState& ts = tables_[static_cast<size_t>(t)];
    return std::min(ts.chunk_size * (c + 1), ts.card);
  }
  int64_t chunk_offset(int t, int c) const {
    return tables_[static_cast<size_t>(t)]
        .offset[static_cast<size_t>(c)]
        .load(std::memory_order_relaxed);
  }
  bool ChunkComplete(int t, int c) const {
    return chunk_offset(t, c) >= chunk_hi(t, c);
  }
  /// The claiming worker's suspended-state store for one chunk.
  ProgressTree* chunk_progress(int t, int c) {
    return tables_[static_cast<size_t>(t)]
        .progress[static_cast<size_t>(c)]
        .get();
  }

  /// Publishes that every position of `t` in [chunk_lo(t, c), p) is fully
  /// joined. Monotone: a lower p than already published is a no-op. Also
  /// advances the table's completed prefix across newly contiguous chunks.
  void Publish(int t, int c, int64_t p);

  /// Largest P such that every position < P of `t` is fully joined (the
  /// contiguous completed prefix; scattered completed chunks beyond it are
  /// visible through the per-chunk offsets / SkipCompleted instead). The
  /// cached value can under-advance when racing publications each miss the
  /// other's chunk — safe for its consumers (descend skipping is merely
  /// conservative) but never trusted for completion; see TableComplete.
  int64_t CompletedPrefix(int t) const {
    return tables_[static_cast<size_t>(t)].prefix.load(
        std::memory_order_relaxed);
  }
  /// True once every chunk of `t` is published complete. Checked against
  /// the per-chunk offsets (with the cached prefix as a fast path), NOT
  /// the prefix alone: two workers completing the last two chunks
  /// concurrently can each compute a stale prefix (no happens-before
  /// between their relaxed publications), and a completion check that
  /// trusted it would make the engine spin on empty slices forever. The
  /// coordinator asks after its slice barrier, which makes all chunk
  /// offsets visible.
  bool TableComplete(int t) const;
  /// True once some table is fully joined as a leftmost => result complete.
  bool AnyTableComplete() const;

  /// Table-indexed read-only views for MultiwayJoinSpec::published.
  const PublishedOffsets* views() const { return views_.data(); }

  /// Total suspended-state trie nodes across all chunks (stats).
  size_t num_progress_nodes() const;

 private:
  struct TableState {
    int64_t card = 0;
    int64_t chunk_size = 1;
    int num_chunks = 0;
    std::unique_ptr<std::atomic<int64_t>[]> offset;       // per chunk
    std::vector<std::unique_ptr<ProgressTree>> progress;  // per chunk
    std::atomic<int64_t> prefix{0};
    std::atomic<int> first_incomplete{0};
  };

  std::vector<TableState> tables_;
  std::vector<PublishedOffsets> views_;
};

}  // namespace skinner

#endif  // SKINNER_SKINNER_PROGRESS_H_
