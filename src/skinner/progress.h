#ifndef SKINNER_SKINNER_PROGRESS_H_
#define SKINNER_SKINNER_PROGRESS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/multiway_join.h"

namespace skinner {

/// Progress store for all join orders tried so far (the paper's progress
/// tracker, Figure 2). A trie over join-order prefixes; each node stores
/// the lexicographically largest frontier reached for its prefix by *any*
/// join order passing through it, which implements the paper's
/// shared-prefix fast-forwarding: a join order can resume from the most
/// advanced frontier of any order with the same prefix, because every
/// prefix combination lexicographically before that frontier has been
/// joined against all remaining tables already (suffix order irrelevant).
class ProgressTree {
 public:
  explicit ProgressTree(int num_tables) : num_tables_(num_tables) {}

  /// Records a suspended `state` for `order` (state.pos[0..depth] valid).
  /// Updates the frontier of every prefix of `order` and the exact state
  /// at the full-order node.
  void Backup(const std::vector<int>& order, const JoinState& state);

  /// Computes the most advanced resume state for `order`, considering the
  /// exact stored state and all shared-prefix frontiers. Returns false if
  /// nothing is stored (fresh start). On a frontier-based resume the
  /// frontier combination itself is re-enumerated (its subtree was in
  /// progress); the global result set deduplicates any re-emitted tuples.
  bool Restore(const std::vector<int>& order, JoinState* state) const;

  /// Number of trie nodes (paper Figure 8b).
  size_t num_nodes() const { return num_nodes_; }

 private:
  struct Node {
    std::map<int, std::unique_ptr<Node>> children;
    // Lex-max frontier for this prefix (length = prefix length).
    std::vector<int64_t> frontier;
    bool has_frontier = false;
    // Exact suspended state; only set on full-order nodes.
    JoinState exact;
    bool has_exact = false;
  };

  static bool LexLess(const std::vector<int64_t>& a,
                      const std::vector<int64_t>& b);

  int num_tables_;
  Node root_;
  size_t num_nodes_ = 1;
};

}  // namespace skinner

#endif  // SKINNER_SKINNER_PROGRESS_H_
