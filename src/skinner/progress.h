#ifndef SKINNER_SKINNER_PROGRESS_H_
#define SKINNER_SKINNER_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/multiway_join.h"

namespace skinner {

/// Progress store for all join orders tried so far (the paper's progress
/// tracker, Figure 2). A trie over join-order prefixes; each node stores
/// the lexicographically largest frontier reached for its prefix by *any*
/// join order passing through it, which implements the paper's
/// shared-prefix fast-forwarding: a join order can resume from the most
/// advanced frontier of any order with the same prefix, because every
/// prefix combination lexicographically before that frontier has been
/// joined against all remaining tables already (suffix order irrelevant).
class ProgressTree {
 public:
  explicit ProgressTree(int num_tables) : num_tables_(num_tables) {}

  /// Records a suspended `state` for `order` (state.pos[0..depth] valid).
  /// Updates the frontier of every prefix of `order` and the exact state
  /// at the full-order node.
  void Backup(const std::vector<int>& order, const JoinState& state);

  /// Computes the most advanced resume state for `order`, considering the
  /// exact stored state and all shared-prefix frontiers. Returns false if
  /// nothing is stored (fresh start). On a frontier-based resume the
  /// frontier combination itself is re-enumerated (its subtree was in
  /// progress); the global result set deduplicates any re-emitted tuples.
  bool Restore(const std::vector<int>& order, JoinState* state) const;

  /// Number of trie nodes (paper Figure 8b).
  size_t num_nodes() const { return num_nodes_; }

 private:
  struct Node {
    std::map<int, std::unique_ptr<Node>> children;
    // Lex-max frontier for this prefix (length = prefix length).
    std::vector<int64_t> frontier;
    bool has_frontier = false;
    // Exact suspended state; only set on full-order nodes.
    JoinState exact;
    bool has_exact = false;
  };

  static bool LexLess(const std::vector<int64_t>& a,
                      const std::vector<int64_t>& b);

  int num_tables_;
  Node root_;
  size_t num_nodes_ = 1;
};

/// Shared work-distribution and offset-publication board for parallel
/// Skinner-C (replaces PR 2's static stripes). Every table's filtered
/// position range [0, cardinality) is cut into chunks — the units of
/// leftmost-table work that workers claim and steal. The layout is ragged:
/// chunks start uniform, but SplitChunk() subdivides a skew-dominated
/// chunk's remaining range in place, so one hot chunk stops serializing
/// the endgame of a query. Per chunk it tracks:
///  - an atomic completed offset ("first position not yet fully joined"),
///    published by whichever worker ran the chunk and exported read-only to
///    the join loop through engine PublishedOffsets views, so ANY worker's
///    descend skips ranges ANY worker already exhausted;
///  - a ProgressTree of suspended states keyed by join order, so a stolen
///    chunk resumes exactly where its previous owner left it, for any
///    order tried so far; and
///  - an atomic step counter ("heat") workers bump after running the
///    chunk, which is the skew signal the engine's split policy reads.
///
/// Concurrency contract: offsets and heat are atomics (any thread, any
/// time; offsets only grow). A chunk's ProgressTree is owned by the single
/// worker that holds the chunk's claim; claims are handed out exclusively
/// within a slice and slices are separated by the engine's barrier, which
/// provides the happens-before edge between successive owners. SplitChunk
/// mutates the chunk list and the sorted views and is therefore legal ONLY
/// at that barrier (no worker running); everything else is slice-safe.
class SharedProgress {
 public:
  /// Initial chunking: `chunk_size` per table is chosen so the table
  /// yields about `target_chunks` chunks, floored at `min_chunk_rows` rows
  /// so tiny chunks don't drown the win in claim overhead. Every table —
  /// including a 0-row one — gets at least one chunk, so per-slice work
  /// lists are never empty for a still-incomplete table.
  SharedProgress(const std::vector<int64_t>& cardinalities, int num_tables,
                 int target_chunks, int64_t min_chunk_rows);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  /// Chunk ids are stable: [0, num_chunks) where splits append fresh ids.
  int num_chunks(int t) const {
    return static_cast<int>(tables_[static_cast<size_t>(t)].chunks.size());
  }
  int64_t chunk_lo(int t, int c) const { return chunk(t, c).lo; }
  int64_t chunk_hi(int t, int c) const { return chunk(t, c).hi; }
  int64_t chunk_offset(int t, int c) const {
    return chunk(t, c).offset.load(std::memory_order_relaxed);
  }
  bool ChunkComplete(int t, int c) const {
    return chunk_offset(t, c) >= chunk_hi(t, c);
  }
  /// The claiming worker's suspended-state store for one chunk.
  ProgressTree* chunk_progress(int t, int c) {
    return tables_[static_cast<size_t>(t)]
        .chunks[static_cast<size_t>(c)]
        ->progress.get();
  }

  /// Publishes that every position of `t` in [chunk_lo(t, c), p) is fully
  /// joined. Monotone: a lower p than already published is a no-op. Also
  /// advances the table's completed prefix across newly contiguous chunks.
  void Publish(int t, int c, int64_t p);

  /// Largest P such that every position < P of `t` is fully joined (the
  /// contiguous completed prefix; scattered completed chunks beyond it are
  /// visible through the per-chunk offsets / SkipCompleted instead). The
  /// cached value can under-advance when racing publications each miss the
  /// other's chunk — safe for its consumers (descend skipping is merely
  /// conservative) but never trusted for completion; see TableComplete.
  int64_t CompletedPrefix(int t) const {
    return tables_[static_cast<size_t>(t)].prefix.load(
        std::memory_order_relaxed);
  }
  /// True once every chunk of `t` is published complete. Checked against
  /// the per-chunk offsets (with the cached prefix as a fast path), NOT
  /// the prefix alone: two workers completing the last two chunks
  /// concurrently can each compute a stale prefix (no happens-before
  /// between their relaxed publications), and a completion check that
  /// trusted it would make the engine spin on empty slices forever. The
  /// coordinator asks after its slice barrier, which makes all chunk
  /// offsets visible.
  bool TableComplete(int t) const;
  /// True once some table is fully joined as a leftmost => result complete.
  bool AnyTableComplete() const;

  /// Table-indexed read-only views for MultiwayJoinSpec::published.
  const PublishedOffsets* views() const { return views_.data(); }

  /// Total suspended-state trie nodes across all chunks (stats).
  size_t num_progress_nodes() const;

  // ---- Adaptive splitting (see class comment for the barrier contract) --

  /// Accumulates `steps` of executed work on chunk `c` of `t` (workers,
  /// after each RunChunk; relaxed — the engine reads it at the barrier).
  void AddChunkSteps(int t, int c, uint64_t steps) {
    chunk(t, c).steps.fetch_add(steps, std::memory_order_relaxed);
  }
  uint64_t chunk_steps(int t, int c) const {
    return chunk(t, c).steps.load(std::memory_order_relaxed);
  }

  /// Splits chunk `c` of table `t` at the midpoint of its REMAINING range
  /// [offset, hi): the old chunk keeps [lo, mid) — and its progress tree,
  /// which stays valid because every stored state's leftmost position is
  /// bounded by the published offset < mid — while [mid, hi) becomes a
  /// fresh chunk (new id, fresh tree, offset = mid). Half the parent's
  /// heat moves to the child so a still-dominant half can split again.
  /// Requires >= 2 remaining positions; returns the new chunk id, or -1
  /// if the chunk cannot be split. Coordinator-only, at the slice barrier:
  /// rebuilds the table's position-sorted view.
  int SplitChunk(int t, int c);
  /// Total splits performed (stats: SkinnerCStats::chunk_splits).
  uint64_t num_splits() const { return num_splits_; }
  /// Still-incomplete chunks of `t` (the split policy's trigger input).
  int IncompleteChunks(int t) const;

 private:
  /// One leftmost-work unit. Heap-allocated so chunk addresses (and the
  /// atomics the published views point at) survive vector growth on split.
  struct Chunk {
    int64_t lo = 0;
    int64_t hi = 0;
    std::atomic<int64_t> offset{0};
    std::unique_ptr<ProgressTree> progress;
    std::atomic<uint64_t> steps{0};  // split-policy heat
  };

  struct TableState {
    int64_t card = 0;
    std::vector<std::unique_ptr<Chunk>> chunks;  // by stable chunk id
    /// Position-sorted parallel arrays backing the PublishedOffsets view
    /// and Publish()'s prefix walk. Rebuilt by SplitChunk (barrier-only).
    std::vector<int64_t> sorted_lo;
    std::vector<const std::atomic<int64_t>*> sorted_off;
    std::atomic<int64_t> prefix{0};
    /// Index into the sorted arrays of the first incomplete chunk.
    std::atomic<int> first_incomplete{0};
  };

  const Chunk& chunk(int t, int c) const {
    return *tables_[static_cast<size_t>(t)].chunks[static_cast<size_t>(c)];
  }
  Chunk& chunk(int t, int c) {
    return *tables_[static_cast<size_t>(t)].chunks[static_cast<size_t>(c)];
  }
  /// Recomputes the sorted arrays + view of `t` after a chunk mutation.
  void RebuildView(int t);

  std::vector<TableState> tables_;
  std::vector<PublishedOffsets> views_;
  uint64_t num_splits_ = 0;
};

}  // namespace skinner

#endif  // SKINNER_SKINNER_PROGRESS_H_
