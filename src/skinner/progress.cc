#include "skinner/progress.h"

namespace skinner {

bool ProgressTree::LexLess(const std::vector<int64_t>& a,
                           const std::vector<int64_t>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return a.size() < b.size();
}

void ProgressTree::Backup(const std::vector<int>& order,
                          const JoinState& state) {
  Node* node = &root_;
  std::vector<int64_t> frontier;
  frontier.reserve(static_cast<size_t>(state.depth) + 1);
  for (int k = 0; k <= state.depth; ++k) {
    int t = order[static_cast<size_t>(k)];
    auto it = node->children.find(t);
    if (it == node->children.end()) {
      it = node->children.emplace(t, std::make_unique<Node>()).first;
      ++num_nodes_;
    }
    node = it->second.get();
    frontier.push_back(state.pos[static_cast<size_t>(k)]);
    if (!node->has_frontier || LexLess(node->frontier, frontier)) {
      node->frontier = frontier;
      node->has_frontier = true;
    }
  }
  // Exact state on the deepest node reached for this order. We key the
  // exact state by the bound prefix (not the full order): resuming needs
  // exactly the bound positions.
  node->exact = state;
  node->exact.pos.resize(static_cast<size_t>(state.depth) + 1);
  node->has_exact = true;
}

bool ProgressTree::Restore(const std::vector<int>& order,
                           JoinState* state) const {
  const Node* node = &root_;
  bool found = false;
  std::vector<int64_t> best;   // resume positions
  bool best_exact = false;
  int exact_depth = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    auto it = node->children.find(order[k]);
    if (it == node->children.end()) break;
    node = it->second.get();
    if (node->has_frontier &&
        (!found || LexLess(best, node->frontier))) {
      best = node->frontier;
      best_exact = false;
      found = true;
    }
    if (node->has_exact && (!found || !LexLess(node->exact.pos, best))) {
      best = node->exact.pos;
      best_exact = true;
      exact_depth = node->exact.depth;
      found = true;
    }
  }
  if (!found) return false;
  state->pos.assign(order.size(), -1);
  for (size_t i = 0; i < best.size(); ++i) state->pos[i] = best[i];
  state->depth = best_exact ? exact_depth : static_cast<int>(best.size()) - 1;
  return true;
}

}  // namespace skinner
