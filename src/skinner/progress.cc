#include "skinner/progress.h"

namespace skinner {

bool ProgressTree::LexLess(const std::vector<int64_t>& a,
                           const std::vector<int64_t>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return a.size() < b.size();
}

void ProgressTree::Backup(const std::vector<int>& order,
                          const JoinState& state) {
  Node* node = &root_;
  std::vector<int64_t> frontier;
  frontier.reserve(static_cast<size_t>(state.depth) + 1);
  for (int k = 0; k <= state.depth; ++k) {
    int t = order[static_cast<size_t>(k)];
    auto it = node->children.find(t);
    if (it == node->children.end()) {
      it = node->children.emplace(t, std::make_unique<Node>()).first;
      ++num_nodes_;
    }
    node = it->second.get();
    frontier.push_back(state.pos[static_cast<size_t>(k)]);
    if (!node->has_frontier || LexLess(node->frontier, frontier)) {
      node->frontier = frontier;
      node->has_frontier = true;
    }
  }
  // Exact state on the deepest node reached for this order. We key the
  // exact state by the bound prefix (not the full order): resuming needs
  // exactly the bound positions.
  node->exact = state;
  node->exact.pos.resize(static_cast<size_t>(state.depth) + 1);
  node->has_exact = true;
}

bool ProgressTree::Restore(const std::vector<int>& order,
                           JoinState* state) const {
  const Node* node = &root_;
  bool found = false;
  std::vector<int64_t> best;   // resume positions
  bool best_exact = false;
  int exact_depth = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    auto it = node->children.find(order[k]);
    if (it == node->children.end()) break;
    node = it->second.get();
    if (node->has_frontier &&
        (!found || LexLess(best, node->frontier))) {
      best = node->frontier;
      best_exact = false;
      found = true;
    }
    if (node->has_exact && (!found || !LexLess(node->exact.pos, best))) {
      best = node->exact.pos;
      best_exact = true;
      exact_depth = node->exact.depth;
      found = true;
    }
  }
  if (!found) return false;
  state->pos.assign(order.size(), -1);
  for (size_t i = 0; i < best.size(); ++i) state->pos[i] = best[i];
  state->depth = best_exact ? exact_depth : static_cast<int>(best.size()) - 1;
  return true;
}

SharedProgress::SharedProgress(const std::vector<int64_t>& cardinalities,
                               int num_tables, int target_chunks,
                               int64_t min_chunk_rows) {
  tables_ = std::vector<TableState>(cardinalities.size());
  views_.resize(cardinalities.size());
  target_chunks = std::max(target_chunks, 1);
  min_chunk_rows = std::max<int64_t>(min_chunk_rows, 1);
  for (size_t t = 0; t < cardinalities.size(); ++t) {
    TableState& ts = tables_[t];
    ts.card = cardinalities[t];
    ts.chunk_size = std::max(
        min_chunk_rows, (ts.card + target_chunks - 1) / target_chunks);
    ts.num_chunks = ts.card == 0
                        ? 0
                        : static_cast<int>((ts.card + ts.chunk_size - 1) /
                                           ts.chunk_size);
    ts.offset = std::make_unique<std::atomic<int64_t>[]>(
        static_cast<size_t>(ts.num_chunks));
    ts.progress.reserve(static_cast<size_t>(ts.num_chunks));
    for (int c = 0; c < ts.num_chunks; ++c) {
      ts.offset[static_cast<size_t>(c)].store(ts.chunk_size * c,
                                              std::memory_order_relaxed);
      ts.progress.push_back(std::make_unique<ProgressTree>(num_tables));
    }
    views_[t].chunk_offset = ts.offset.get();
    views_[t].chunk_size = ts.chunk_size;
    views_[t].cardinality = ts.card;
    views_[t].num_chunks = static_cast<size_t>(ts.num_chunks);
  }
}

void SharedProgress::Publish(int t, int c, int64_t p) {
  TableState& ts = tables_[static_cast<size_t>(t)];
  p = std::min(p, chunk_hi(t, c));
  std::atomic<int64_t>& off = ts.offset[static_cast<size_t>(c)];
  int64_t cur = off.load(std::memory_order_relaxed);
  while (cur < p && !off.compare_exchange_weak(cur, p,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
  }
  // Advance the contiguous completed prefix past any chunks that are now
  // complete. Every value involved is monotone, so racing publishers can
  // only under-advance (conservative), never over-advance.
  int k = ts.first_incomplete.load(std::memory_order_relaxed);
  while (k < ts.num_chunks &&
         ts.offset[static_cast<size_t>(k)].load(std::memory_order_relaxed) >=
             chunk_hi(t, k)) {
    ++k;
  }
  int cur_k = ts.first_incomplete.load(std::memory_order_relaxed);
  while (cur_k < k && !ts.first_incomplete.compare_exchange_weak(
                          cur_k, k, std::memory_order_release,
                          std::memory_order_relaxed)) {
  }
  int64_t pfx =
      k >= ts.num_chunks
          ? ts.card
          : ts.offset[static_cast<size_t>(k)].load(std::memory_order_relaxed);
  int64_t cur_p = ts.prefix.load(std::memory_order_relaxed);
  while (cur_p < pfx && !ts.prefix.compare_exchange_weak(
                            cur_p, pfx, std::memory_order_release,
                            std::memory_order_relaxed)) {
  }
}

bool SharedProgress::TableComplete(int t) const {
  const TableState& ts = tables_[static_cast<size_t>(t)];
  if (ts.prefix.load(std::memory_order_relaxed) >= ts.card) return true;
  for (int c = 0; c < ts.num_chunks; ++c) {
    if (ts.offset[static_cast<size_t>(c)].load(std::memory_order_relaxed) <
        chunk_hi(t, c)) {
      return false;
    }
  }
  return true;
}

bool SharedProgress::AnyTableComplete() const {
  for (size_t t = 0; t < tables_.size(); ++t) {
    if (TableComplete(static_cast<int>(t))) return true;
  }
  return false;
}

size_t SharedProgress::num_progress_nodes() const {
  size_t n = 0;
  for (const TableState& ts : tables_) {
    for (const auto& tree : ts.progress) n += tree->num_nodes();
  }
  return n;
}

}  // namespace skinner
