#include "skinner/progress.h"

namespace skinner {

bool ProgressTree::LexLess(const std::vector<int64_t>& a,
                           const std::vector<int64_t>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return a.size() < b.size();
}

void ProgressTree::Backup(const std::vector<int>& order,
                          const JoinState& state) {
  Node* node = &root_;
  std::vector<int64_t> frontier;
  frontier.reserve(static_cast<size_t>(state.depth) + 1);
  for (int k = 0; k <= state.depth; ++k) {
    int t = order[static_cast<size_t>(k)];
    auto it = node->children.find(t);
    if (it == node->children.end()) {
      it = node->children.emplace(t, std::make_unique<Node>()).first;
      ++num_nodes_;
    }
    node = it->second.get();
    frontier.push_back(state.pos[static_cast<size_t>(k)]);
    if (!node->has_frontier || LexLess(node->frontier, frontier)) {
      node->frontier = frontier;
      node->has_frontier = true;
    }
  }
  // Exact state on the deepest node reached for this order. We key the
  // exact state by the bound prefix (not the full order): resuming needs
  // exactly the bound positions.
  node->exact = state;
  node->exact.pos.resize(static_cast<size_t>(state.depth) + 1);
  node->has_exact = true;
}

bool ProgressTree::Restore(const std::vector<int>& order,
                           JoinState* state) const {
  const Node* node = &root_;
  bool found = false;
  std::vector<int64_t> best;   // resume positions
  bool best_exact = false;
  int exact_depth = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    auto it = node->children.find(order[k]);
    if (it == node->children.end()) break;
    node = it->second.get();
    if (node->has_frontier &&
        (!found || LexLess(best, node->frontier))) {
      best = node->frontier;
      best_exact = false;
      found = true;
    }
    if (node->has_exact && (!found || !LexLess(node->exact.pos, best))) {
      best = node->exact.pos;
      best_exact = true;
      exact_depth = node->exact.depth;
      found = true;
    }
  }
  if (!found) return false;
  state->pos.assign(order.size(), -1);
  for (size_t i = 0; i < best.size(); ++i) state->pos[i] = best[i];
  state->depth = best_exact ? exact_depth : static_cast<int>(best.size()) - 1;
  return true;
}

SharedProgress::SharedProgress(const std::vector<int64_t>& cardinalities,
                               int num_tables, int target_chunks,
                               int64_t min_chunk_rows) {
  tables_ = std::vector<TableState>(cardinalities.size());
  views_.resize(cardinalities.size());
  target_chunks = std::max(target_chunks, 1);
  min_chunk_rows = std::max<int64_t>(min_chunk_rows, 1);
  for (size_t t = 0; t < cardinalities.size(); ++t) {
    TableState& ts = tables_[t];
    ts.card = cardinalities[t];
    const int64_t chunk_size = std::max(
        min_chunk_rows, (ts.card + target_chunks - 1) / target_chunks);
    // Every table gets at least one chunk, even at cardinality 0 (the
    // chunk [0, 0) is born complete): a zero-chunk table would produce
    // empty per-slice work lists and division hazards downstream.
    const int n = std::max<int64_t>(
        1, (ts.card + chunk_size - 1) / chunk_size);
    ts.chunks.reserve(static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) {
      auto chunk = std::make_unique<Chunk>();
      chunk->lo = chunk_size * c;
      chunk->hi = std::min(chunk_size * (c + 1), ts.card);
      chunk->offset.store(chunk->lo, std::memory_order_relaxed);
      chunk->progress = std::make_unique<ProgressTree>(num_tables);
      ts.chunks.push_back(std::move(chunk));
    }
    RebuildView(static_cast<int>(t));
  }
}

void SharedProgress::RebuildView(int t) {
  TableState& ts = tables_[static_cast<size_t>(t)];
  const size_t n = ts.chunks.size();
  ts.sorted_lo.resize(n);
  ts.sorted_off.resize(n);
  // Sort chunk ids by lower bound (splits append out of position order).
  std::vector<size_t> by_lo(n);
  for (size_t i = 0; i < n; ++i) by_lo[i] = i;
  std::sort(by_lo.begin(), by_lo.end(), [&](size_t a, size_t b) {
    return ts.chunks[a]->lo < ts.chunks[b]->lo;
  });
  for (size_t k = 0; k < n; ++k) {
    ts.sorted_lo[k] = ts.chunks[by_lo[k]]->lo;
    ts.sorted_off[k] = &ts.chunks[by_lo[k]]->offset;
  }
  // Recompute the first-incomplete cursor for the new ordering (the
  // barrier context makes all offsets visible, so this is exact here).
  int k = 0;
  while (k < static_cast<int>(n)) {
    const int64_t hi = k + 1 < static_cast<int>(n) ? ts.sorted_lo[k + 1]
                                                   : ts.card;
    if (ts.sorted_off[k]->load(std::memory_order_relaxed) < hi) break;
    ++k;
  }
  ts.first_incomplete.store(k, std::memory_order_relaxed);
  PublishedOffsets& v = views_[static_cast<size_t>(t)];
  v.lo = ts.sorted_lo.data();
  v.offset = ts.sorted_off.data();
  v.cardinality = ts.card;
  v.num_chunks = n;
}

void SharedProgress::Publish(int t, int c, int64_t p) {
  TableState& ts = tables_[static_cast<size_t>(t)];
  Chunk& ch = chunk(t, c);
  p = std::min(p, ch.hi);
  int64_t cur = ch.offset.load(std::memory_order_relaxed);
  while (cur < p && !ch.offset.compare_exchange_weak(
                        cur, p, std::memory_order_release,
                        std::memory_order_relaxed)) {
  }
  // Advance the contiguous completed prefix past any chunks that are now
  // complete, walking the position-sorted view. Every value involved is
  // monotone within a slice, so racing publishers can only under-advance
  // (conservative), never over-advance.
  const int n = static_cast<int>(ts.sorted_lo.size());
  int k = ts.first_incomplete.load(std::memory_order_relaxed);
  while (k < n) {
    const int64_t hi = k + 1 < n ? ts.sorted_lo[k + 1] : ts.card;
    if (ts.sorted_off[k]->load(std::memory_order_relaxed) < hi) break;
    ++k;
  }
  int cur_k = ts.first_incomplete.load(std::memory_order_relaxed);
  while (cur_k < k && !ts.first_incomplete.compare_exchange_weak(
                          cur_k, k, std::memory_order_release,
                          std::memory_order_relaxed)) {
  }
  int64_t pfx =
      k >= n ? ts.card
             : ts.sorted_off[k]->load(std::memory_order_relaxed);
  int64_t cur_p = ts.prefix.load(std::memory_order_relaxed);
  while (cur_p < pfx && !ts.prefix.compare_exchange_weak(
                            cur_p, pfx, std::memory_order_release,
                            std::memory_order_relaxed)) {
  }
}

bool SharedProgress::TableComplete(int t) const {
  const TableState& ts = tables_[static_cast<size_t>(t)];
  if (ts.prefix.load(std::memory_order_relaxed) >= ts.card) return true;
  for (const auto& ch : ts.chunks) {
    if (ch->offset.load(std::memory_order_relaxed) < ch->hi) return false;
  }
  return true;
}

bool SharedProgress::AnyTableComplete() const {
  for (size_t t = 0; t < tables_.size(); ++t) {
    if (TableComplete(static_cast<int>(t))) return true;
  }
  return false;
}

size_t SharedProgress::num_progress_nodes() const {
  size_t n = 0;
  for (const TableState& ts : tables_) {
    for (const auto& ch : ts.chunks) n += ch->progress->num_nodes();
  }
  return n;
}

int SharedProgress::SplitChunk(int t, int c) {
  TableState& ts = tables_[static_cast<size_t>(t)];
  Chunk& ch = chunk(t, c);
  const int64_t off = ch.offset.load(std::memory_order_relaxed);
  const int64_t start = std::max(off, ch.lo);
  if (ch.hi - start < 2) return -1;  // nothing meaningful to split
  const int64_t mid = start + (ch.hi - start) / 2;
  // The parent keeps [lo, mid) and its progress tree: every state stored
  // in it has its leftmost position <= the published offset (suspension
  // publishes everything below its position first), and offset <= start <
  // mid, so no stored state refers past the shrunk bound.
  auto child = std::make_unique<Chunk>();
  child->lo = mid;
  child->hi = ch.hi;
  child->offset.store(mid, std::memory_order_relaxed);
  child->progress = std::make_unique<ProgressTree>(num_tables());
  // Move half the parent's heat so a still-dominant half keeps a signal
  // strong enough to split again next slice.
  const uint64_t heat = ch.steps.load(std::memory_order_relaxed) / 2;
  ch.steps.store(heat, std::memory_order_relaxed);
  child->steps.store(heat, std::memory_order_relaxed);
  ch.hi = mid;
  ts.chunks.push_back(std::move(child));
  ++num_splits_;
  RebuildView(t);
  return static_cast<int>(ts.chunks.size()) - 1;
}

int SharedProgress::IncompleteChunks(int t) const {
  const TableState& ts = tables_[static_cast<size_t>(t)];
  int n = 0;
  for (const auto& ch : ts.chunks) {
    if (ch->offset.load(std::memory_order_relaxed) < ch->hi) ++n;
  }
  return n;
}

}  // namespace skinner
