#include "skinner/skinner_c.h"

#include <algorithm>

namespace skinner {

namespace {
UctOptions MakeUctOptions(const SkinnerCOptions& opts) {
  UctOptions u;
  u.explore_weight = opts.uct_weight;
  u.policy = opts.policy;
  u.seed = opts.seed;
  return u;
}
}  // namespace

SkinnerCEngine::SkinnerCEngine(const PreparedQuery* pq,
                               const SkinnerCOptions& opts)
    : pq_(pq),
      opts_(opts),
      uct_(&pq->info(), MakeUctOptions(opts)),
      progress_(pq->num_tables()),
      offset_(static_cast<size_t>(pq->num_tables()), 0) {}

JoinCursor* SkinnerCEngine::CursorFor(const std::vector<int>& order) {
  auto it = cursors_.find(order);
  if (it != cursors_.end()) return it->second.get();
  auto cursor = std::make_unique<JoinCursor>(pq_, BuildJoinSteps(*pq_, order));
  JoinCursor* ptr = cursor.get();
  cursors_.emplace(order, std::move(cursor));
  return ptr;
}

JoinState SkinnerCEngine::RestoreState(const std::vector<int>& order,
                                       JoinCursor* cursor) {
  JoinState state;
  state.pos.assign(order.size(), -1);
  bool restored = progress_.Restore(order, &state);
  if (!restored) {
    state.depth = 0;
    state.pos[0] = offset_[static_cast<size_t>(order[0])];
    if (state.pos[0] >= pq_->cardinality(order[0])) state.pos[0] = -1;
    return state;
  }
  // Fast-forward past offsets: tuples below offset[t] are fully joined
  // already. Walk depths in order; at the first position that fell behind
  // an advanced offset, re-derive the candidate and truncate the state.
  for (int d = 0; d <= state.depth; ++d) {
    int t = order[static_cast<size_t>(d)];
    int64_t off = offset_[static_cast<size_t>(t)];
    if (state.pos[static_cast<size_t>(d)] < off) {
      state.pos[static_cast<size_t>(d)] = cursor->FirstCandidate(d, off);
      state.depth = d;
      break;
    }
    cursor->Bind(d, state.pos[static_cast<size_t>(d)]);
  }
  return state;
}

bool SkinnerCEngine::ContinueJoin(const std::vector<int>& order,
                                  JoinCursor* cursor, JoinState* state,
                                  int64_t budget) {
  const int m = static_cast<int>(order.size());
  VirtualClock* clock = pq_->clock();
  int i = state->depth;
  auto& pos = state->pos;
  // Bind all prefix tables (positions < depth passed checks before
  // suspension; depth's own candidate is tested in the loop).
  for (int d = 0; d < i; ++d) cursor->Bind(d, pos[static_cast<size_t>(d)]);

  PosTuple tuple(static_cast<size_t>(pq_->num_tables()), -1);
  int64_t steps = 0;
  bool done = false;
  while (true) {
    if (i < 0) {
      done = true;
      break;
    }
    if (steps >= budget) break;
    ++steps;
    clock->Tick();
    int64_t p = pos[static_cast<size_t>(i)];
    if (p < 0) {
      // Exhausted at depth i: backtrack.
      if (i == 0) {
        // Leftmost exhausted: every tuple of order[0] fully joined.
        offset_[static_cast<size_t>(order[0])] = pq_->cardinality(order[0]);
        done = true;
        i = -1;
        break;
      }
      --i;
      int64_t old = pos[static_cast<size_t>(i)];
      pos[static_cast<size_t>(i)] = cursor->NextCandidate(i, old);
      if (i == 0) {
        // Position `old` of the leftmost table is now fully processed.
        offset_[static_cast<size_t>(order[0])] =
            std::max(offset_[static_cast<size_t>(order[0])], old + 1);
      }
      continue;
    }
    cursor->Bind(i, p);
    if (!cursor->Check(i)) {
      pos[static_cast<size_t>(i)] = cursor->NextCandidate(i, p);
      continue;
    }
    ++stats_.intermediate_tuples;
    if (i == m - 1) {
      for (int d = 0; d < m; ++d) {
        tuple[static_cast<size_t>(order[static_cast<size_t>(d)])] =
            static_cast<int32_t>(pos[static_cast<size_t>(d)]);
      }
      result_.insert(tuple);
      pos[static_cast<size_t>(i)] = cursor->NextCandidate(i, p);
      continue;
    }
    ++i;
    pos[static_cast<size_t>(i)] = cursor->FirstCandidate(
        i, offset_[static_cast<size_t>(order[static_cast<size_t>(i)])]);
  }
  if (!done) {
    // Normalize the suspension point: resolve any pending backtracks so the
    // stored state has a valid candidate at every depth (keeps progress
    // frontiers meaningful).
    while (i >= 0 && pos[static_cast<size_t>(i)] < 0) {
      if (i == 0) {
        offset_[static_cast<size_t>(order[0])] = pq_->cardinality(order[0]);
        done = true;
        i = -1;
        break;
      }
      --i;
      int64_t old = pos[static_cast<size_t>(i)];
      pos[static_cast<size_t>(i)] = cursor->NextCandidate(i, old);
      if (i == 0) {
        offset_[static_cast<size_t>(order[0])] =
            std::max(offset_[static_cast<size_t>(order[0])], old + 1);
      }
    }
  }
  state->depth = std::max(i, 0);
  return done;
}

double SkinnerCEngine::ProgressValue(const std::vector<int>& order,
                                     const JoinState& state) const {
  // Paper 4.5: sum of tuple index deltas, each scaled down by the product
  // of the cardinalities of its table and all preceding tables. Computed
  // here as an absolute potential; the reward is the per-slice increase.
  double value = 0;
  double scale = 1;
  for (int d = 0; d <= state.depth; ++d) {
    int64_t card = pq_->cardinality(order[static_cast<size_t>(d)]);
    if (card == 0) return 1.0;
    scale /= static_cast<double>(card);
    int64_t p = state.pos[static_cast<size_t>(d)];
    if (p < 0) p = 0;
    value += static_cast<double>(p) * scale;
  }
  return value;
}

Status SkinnerCEngine::Run(std::vector<PosTuple>* out) {
  if (pq_->trivially_empty()) {
    stats_.final_order = uct_.BestOrder();
    return Status::OK();
  }
  const int m = pq_->num_tables();
  VirtualClock* clock = pq_->clock();

  while (!finished_) {
    if (clock->now() >= opts_.deadline) {
      stats_.timed_out = true;
      break;
    }
    // Any table fully consumed as a leftmost table => result complete.
    for (int t = 0; t < m; ++t) {
      if (offset_[static_cast<size_t>(t)] >= pq_->cardinality(t)) {
        finished_ = true;
      }
    }
    if (finished_) break;

    std::vector<int> order = uct_.Choose();
    JoinCursor* cursor = CursorFor(order);
    JoinState state = RestoreState(order, cursor);
    double before = 0;
    if (opts_.reward == RewardKind::kWeightedProgress) {
      before = ProgressValue(order, state);
    } else {
      before = state.pos[0] < 0
                   ? 1.0
                   : static_cast<double>(state.pos[0]) /
                         static_cast<double>(std::max<int64_t>(
                             pq_->cardinality(order[0]), 1));
    }
    bool done = ContinueJoin(order, cursor, &state, opts_.slice_budget);
    double after;
    if (done) {
      after = 1.0;
    } else if (opts_.reward == RewardKind::kWeightedProgress) {
      after = ProgressValue(order, state);
    } else {
      after = state.pos[0] < 0
                  ? 1.0
                  : static_cast<double>(state.pos[0]) /
                        static_cast<double>(std::max<int64_t>(
                            pq_->cardinality(order[0]), 1));
    }
    double reward = std::clamp(after - before, 0.0, 1.0);
    uct_.RewardUpdate(order, reward);
    if (!done) progress_.Backup(order, state);
    ++stats_.slices;
    if (opts_.collect_trace) {
      stats_.order_selections[order] += 1;
      if (stats_.slices % 16 == 1) {
        stats_.tree_growth.emplace_back(stats_.slices, uct_.num_nodes());
      }
    }
    if (done) finished_ = true;
  }

  stats_.uct_nodes = uct_.num_nodes();
  stats_.progress_nodes = progress_.num_nodes();
  stats_.result_tuples = result_.size();
  stats_.final_order = uct_.BestOrder();
  stats_.auxiliary_bytes =
      result_.size() * (sizeof(PosTuple) + sizeof(int32_t) * static_cast<size_t>(m)) +
      stats_.progress_nodes * (sizeof(void*) * 4 + sizeof(int64_t) * static_cast<size_t>(m) / 2) +
      stats_.uct_nodes * (sizeof(void*) * 4 + 24 * static_cast<size_t>(m) / 2);

  out->reserve(out->size() + result_.size());
  for (const PosTuple& t : result_) out->push_back(t);
  return Status::OK();
}

}  // namespace skinner
