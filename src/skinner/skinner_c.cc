#include "skinner/skinner_c.h"

#include <algorithm>

namespace skinner {

namespace {
UctOptions MakeUctOptions(const SkinnerCOptions& opts) {
  UctOptions u;
  u.explore_weight = opts.uct_weight;
  u.policy = opts.policy;
  u.seed = opts.seed;
  return u;
}

/// Result-set shards for the parallel striped-lock Insert path. More
/// stripes than typical worker counts keeps contention negligible.
constexpr int kParallelShards = 16;

ThreadLease MaybeLease(const SkinnerCOptions& opts) {
  if (opts.scheduler == nullptr || opts.num_threads <= 1) return ThreadLease();
  return opts.scheduler->LeaseThreads(opts.num_threads);
}

SkinnerCOptions ClampToLease(const SkinnerCOptions& opts,
                             const ThreadLease& lease) {
  SkinnerCOptions o = opts;
  if (o.scheduler != nullptr && o.num_threads > 1) {
    o.num_threads = std::max(1, lease.granted());
  }
  return o;
}
}  // namespace

SkinnerCEngine::SkinnerCEngine(const PreparedQuery* pq,
                               const SkinnerCOptions& opts)
    : pq_(pq),
      lease_(MaybeLease(opts)),
      opts_(ClampToLease(opts, lease_)),
      uct_(&pq->info(), MakeUctOptions(opts)),
      result_(pq->num_tables(), opts_.num_threads > 1 ? kParallelShards : 1) {
  if (opts_.warm_start_order.size() ==
      static_cast<size_t>(pq->num_tables())) {
    uct_.SeedPriors(opts_.warm_start_order, opts_.warm_start_visits,
                    opts_.warm_start_reward);
  }
}

SkinnerCEngine::~SkinnerCEngine() { StopThreads(); }

void SkinnerCEngine::InitWorkers() {
  const int m = pq_->num_tables();
  const int T = std::max(1, opts_.num_threads);
  zero_lower_.assign(static_cast<size_t>(m), 0);
  workers_.reserve(static_cast<size_t>(T));
  for (int j = 0; j < T; ++j) {
    auto w = std::make_unique<Worker>(m);
    w->id = j;
    w->stripe_lo.resize(static_cast<size_t>(m));
    w->stripe_hi.resize(static_cast<size_t>(m));
    w->offset.resize(static_cast<size_t>(m));
    for (int t = 0; t < m; ++t) {
      int64_t card = pq_->cardinality(t);
      w->stripe_lo[static_cast<size_t>(t)] = card * j / T;
      w->stripe_hi[static_cast<size_t>(t)] = card * (j + 1) / T;
      w->offset[static_cast<size_t>(t)] = w->stripe_lo[static_cast<size_t>(t)];
    }
    workers_.push_back(std::move(w));
  }
  if (stealing()) {
    std::vector<int64_t> cards(static_cast<size_t>(m));
    for (int t = 0; t < m; ++t) {
      cards[static_cast<size_t>(t)] = pq_->cardinality(t);
    }
    shared_ = std::make_unique<SharedProgress>(
        cards, m, std::max(1, opts_.chunks_per_thread) * T,
        opts_.min_chunk_rows);
    work_next_ = std::make_unique<std::atomic<size_t>[]>(
        static_cast<size_t>(T));
    work_end_.assign(static_cast<size_t>(T), 0);
  }
}

VirtualClock* SkinnerCEngine::WorkerClock(Worker* w) {
  // Sequential execution charges the shared clock directly; parallel
  // workers tick private clocks that the coordinator merges per slice
  // under the wall-clock model (max across workers), mirroring how the
  // paper reports parallel speedups.
  return workers_.size() > 1 ? &w->clock : pq_->clock();
}

JoinCursor* SkinnerCEngine::CursorFor(Worker* w,
                                      const std::vector<int>& order) {
  auto it = w->cursors.find(order);
  if (it != w->cursors.end()) return it->second.get();
  auto cursor = std::make_unique<JoinCursor>(pq_, BuildJoinSteps(*pq_, order));
  if (workers_.size() > 1) cursor->SetClock(&w->clock);
  JoinCursor* ptr = cursor.get();
  w->cursors.emplace(order, std::move(cursor));
  return ptr;
}

JoinState SkinnerCEngine::RestoreState(Worker* w, const std::vector<int>& order,
                                       JoinCursor* cursor) {
  JoinState state;
  state.pos.assign(order.size(), -1);
  bool restored = w->progress.Restore(order, &state);
  const int t0 = order[0];
  if (!restored) {
    state.depth = 0;
    state.pos[0] = w->offset[static_cast<size_t>(t0)];
    if (state.pos[0] >= w->stripe_hi[static_cast<size_t>(t0)]) {
      state.pos[0] = -1;
    }
    return state;
  }
  // Fast-forward past offsets: tuples below offset[t] are fully joined
  // already. Walk depths in order; at the first position that fell behind
  // an advanced offset, re-derive the candidate and truncate the state.
  // With multiple workers only the leftmost depth may fast-forward: a
  // worker's offsets cover its own stripes, while deeper descends scan the
  // full range, so positions below another worker's stripe are not known
  // to be complete.
  const bool single = workers_.size() == 1;
  for (int d = 0; d <= state.depth; ++d) {
    int t = order[static_cast<size_t>(d)];
    int64_t off = (d == 0 || single) ? w->offset[static_cast<size_t>(t)] : 0;
    if (state.pos[static_cast<size_t>(d)] < off) {
      state.pos[static_cast<size_t>(d)] = cursor->FirstCandidate(d, off);
      state.depth = d;
      break;
    }
    cursor->Bind(d, state.pos[static_cast<size_t>(d)]);
  }
  return state;
}

double SkinnerCEngine::ProgressValue(const Worker& w,
                                     const std::vector<int>& order,
                                     const JoinState& state) const {
  (void)w;
  // Paper 4.5: sum of tuple index deltas, each scaled down by the product
  // of the cardinalities of its table and all preceding tables. Computed
  // here as an absolute potential; the reward is the per-slice increase.
  double value = 0;
  double scale = 1;
  for (int d = 0; d <= state.depth; ++d) {
    int64_t card = pq_->cardinality(order[static_cast<size_t>(d)]);
    if (card == 0) return 1.0;
    scale /= static_cast<double>(card);
    int64_t p = state.pos[static_cast<size_t>(d)];
    if (p < 0) p = 0;
    value += static_cast<double>(p) * scale;
  }
  return value;
}

double SkinnerCEngine::RewardPotential(const Worker& w,
                                       const std::vector<int>& order,
                                       const JoinState& state) const {
  if (opts_.reward == RewardKind::kWeightedProgress) {
    return ProgressValue(w, order, state);
  }
  return state.pos[0] < 0
             ? 1.0
             : static_cast<double>(state.pos[0]) /
                   static_cast<double>(
                       std::max<int64_t>(pq_->cardinality(order[0]), 1));
}

void SkinnerCEngine::RunWorkerSlice(Worker* w, const std::vector<int>& order) {
  const int t0 = order[0];
  JoinCursor* cursor = CursorFor(w, order);
  JoinState state = RestoreState(w, order, cursor);

  double before = RewardPotential(*w, order, state);

  MultiwayJoinSpec spec;
  spec.left_to = w->stripe_hi[static_cast<size_t>(t0)];
  spec.lower =
      workers_.size() == 1 ? w->offset.data() : zero_lower_.data();
  spec.budget = opts_.slice_budget;
  spec.charge_backtrack = true;
  spec.clock = WorkerClock(w);

  JoinLoopExit exit = MultiwayJoinLoop(
      cursor, order, spec, &state, &w->loop_stats,
      [&](const PosTuple& tuple) { result_.Insert(tuple); },
      [&](int64_t p) {
        int64_t& off = w->offset[static_cast<size_t>(t0)];
        off = std::max(off, p);
      });
  bool done = exit == JoinLoopExit::kCompleted;
  double after = done ? 1.0 : RewardPotential(*w, order, state);
  w->slice_reward = std::clamp(after - before, 0.0, 1.0);
  w->slice_done = done;
  if (!done) w->progress.Backup(order, state);
}

void SkinnerCEngine::AdaptiveSplit(int leftmost_table) {
  const int T = static_cast<int>(workers_.size());
  // A slice's virtual cost is the slowest worker's clock, so workers
  // idling while one grinds a hot chunk is pure cost. Split while either
  //  (a) there are fewer work units than workers (endgame starvation), or
  //  (b) one chunk has absorbed a majority of all executed steps so far
  //      (a skew hot spot: whoever claims it will dominate the slice),
  // capped at kMaxUnitsPerWorker units so balanced workloads never churn.
  constexpr int kMaxUnitsPerWorker = 4;
  int incomplete = shared_->IncompleteChunks(leftmost_table);
  while (incomplete > 0 && incomplete < kMaxUnitsPerWorker * T) {
    // Hottest splittable chunk; remaining range breaks heat ties (all-zero
    // heat degenerates to largest-remaining, still the best balance bet).
    const int n = shared_->num_chunks(leftmost_table);
    int best = -1;
    uint64_t best_heat = 0;
    uint64_t total_heat = 0;
    int64_t best_remaining = 0;
    for (int c = 0; c < n; ++c) {
      const int64_t remaining = shared_->chunk_hi(leftmost_table, c) -
                                shared_->chunk_offset(leftmost_table, c);
      if (remaining < 2) continue;  // complete or unsplittable
      const uint64_t heat = shared_->chunk_steps(leftmost_table, c);
      total_heat += heat;
      if (best < 0 || heat > best_heat ||
          (heat == best_heat && remaining > best_remaining)) {
        best = c;
        best_heat = heat;
        best_remaining = remaining;
      }
    }
    const bool starving = incomplete < T;
    const bool dominant = best_heat * 2 > total_heat && best_heat > 0;
    if (!starving && !dominant) break;
    if (best < 0 || shared_->SplitChunk(leftmost_table, best) < 0) break;
    ++incomplete;
  }
}

void SkinnerCEngine::BuildSliceWork(int leftmost_table) {
  work_table_ = leftmost_table;
  work_ids_.clear();
  const int n = shared_->num_chunks(leftmost_table);
  for (int c = 0; c < n; ++c) {
    if (!shared_->ChunkComplete(leftmost_table, c)) work_ids_.push_back(c);
  }
  // Serve from the completion frontier: position order, windowed (see
  // SkinnerCOptions::claim_window_per_worker). Chunk ids are
  // append-ordered (splits push children at the end), so sort by range.
  if (opts_.claim_window_per_worker > 0) {
    std::sort(work_ids_.begin(), work_ids_.end(), [&](int a, int b) {
      return shared_->chunk_lo(leftmost_table, a) <
             shared_->chunk_lo(leftmost_table, b);
    });
    const size_t window = static_cast<size_t>(opts_.claim_window_per_worker) *
                          workers_.size();
    if (work_ids_.size() > window) work_ids_.resize(window);
  }
  // Contiguous per-worker blocks (chunk locality for the common case);
  // the remainder chunks go to the first blocks.
  const size_t T = workers_.size();
  const size_t base = work_ids_.size() / T;
  const size_t rem = work_ids_.size() % T;
  size_t pos = 0;
  for (size_t j = 0; j < T; ++j) {
    work_next_[j].store(pos, std::memory_order_relaxed);
    pos += base + (j < rem ? 1 : 0);
    work_end_[j] = pos;
  }
}

int SkinnerCEngine::ClaimChunk(Worker* w) {
  const int T = static_cast<int>(workers_.size());
  for (int v = 0; v < T; ++v) {
    // Own block first; once it drains, steal from the other workers'
    // blocks in round-robin order. fetch_add hands each list index to
    // exactly one worker, so a chunk is run by one worker per slice.
    const size_t victim = static_cast<size_t>((w->id + v) % T);
    const size_t end = work_end_[victim];
    for (;;) {
      size_t i = work_next_[victim].fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      int id = work_ids_[i];
      // A chunk can complete mid-slice list construction; skip stale ids.
      if (!shared_->ChunkComplete(work_table_, id)) return id;
    }
  }
  return -1;
}

JoinState SkinnerCEngine::RestoreChunkState(int chunk_id,
                                            const std::vector<int>& order,
                                            JoinCursor* cursor) {
  const int t0 = order[0];
  JoinState state;
  state.pos.assign(order.size(), -1);
  const int64_t off = shared_->chunk_offset(t0, chunk_id);
  ProgressTree* progress = shared_->chunk_progress(t0, chunk_id);
  if (!progress->Restore(order, &state)) {
    state.depth = 0;
    state.pos[0] = off;  // the claim guarantees off < chunk_hi
    return state;
  }
  // Fast-forward: at depth 0 past the chunk's published offset; deeper,
  // past any published fully-joined range of that depth's table (possibly
  // advanced by other workers since this state was stored). At the first
  // position that fell behind, re-derive the candidate and truncate.
  const PublishedOffsets* views = shared_->views();
  for (int d = 0; d <= state.depth; ++d) {
    const int t = order[static_cast<size_t>(d)];
    const int64_t p = state.pos[static_cast<size_t>(d)];
    const int64_t low =
        d == 0 ? off : views[static_cast<size_t>(t)].SkipCompleted(p);
    if (p < low) {
      state.pos[static_cast<size_t>(d)] = cursor->FirstCandidate(d, low);
      state.depth = d;
      break;
    }
    cursor->Bind(d, p);
  }
  return state;
}

double SkinnerCEngine::RunChunk(Worker* w, const std::vector<int>& order,
                                int chunk_id, int64_t* budget_left) {
  const int t0 = order[0];
  JoinCursor* cursor = CursorFor(w, order);
  JoinState state = RestoreChunkState(chunk_id, order, cursor);
  const double before = RewardPotential(*w, order, state);

  MultiwayJoinSpec spec;
  spec.left_to = shared_->chunk_hi(t0, chunk_id);
  spec.lower = zero_lower_.data();
  spec.published = shared_->views();
  spec.budget = *budget_left;
  spec.charge_backtrack = true;
  spec.clock = WorkerClock(w);

  const uint64_t steps_before = w->loop_stats.steps;
  JoinLoopExit exit = MultiwayJoinLoop(
      cursor, order, spec, &state, &w->loop_stats,
      [&](const PosTuple& tuple) { w->local.Insert(tuple); },
      [&](int64_t p) { shared_->Publish(t0, chunk_id, p); });
  const uint64_t chunk_steps = w->loop_stats.steps - steps_before;
  *budget_left -= static_cast<int64_t>(chunk_steps);
  // Heat for the adaptive split policy: how much budget this chunk ate.
  shared_->AddChunkSteps(t0, chunk_id, chunk_steps);

  double after;
  if (exit == JoinLoopExit::kCompleted) {
    JoinState end_state;
    end_state.depth = 0;
    end_state.pos.assign(order.size(), -1);
    end_state.pos[0] = spec.left_to;
    after = RewardPotential(*w, order, end_state);
  } else {
    after = RewardPotential(*w, order, state);
    shared_->chunk_progress(t0, chunk_id)->Backup(order, state);
  }
  return std::max(0.0, after - before);
}

void SkinnerCEngine::RunWorkerSliceStealing(Worker* w,
                                            const std::vector<int>& order) {
  int64_t budget_left = opts_.slice_budget;
  double reward = 0;
  while (budget_left > 0) {
    int chunk_id = ClaimChunk(w);
    if (chunk_id < 0) break;
    reward += RunChunk(w, order, chunk_id, &budget_left);
  }
  w->slice_reward = std::clamp(reward, 0.0, 1.0);
  // Completion is tracked through the shared board (CompletedTable), not
  // per worker: a worker that ran out of chunks is not "done" evidence.
  w->slice_done = false;
}

bool SkinnerCEngine::CompletedTable() const {
  if (shared_ != nullptr) return shared_->AnyTableComplete();
  const int m = pq_->num_tables();
  for (int t = 0; t < m; ++t) {
    bool all = true;
    for (const auto& w : workers_) {
      if (w->offset[static_cast<size_t>(t)] <
          w->stripe_hi[static_cast<size_t>(t)]) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

size_t SkinnerCEngine::AuxiliaryBytes() const {
  const size_t m = static_cast<size_t>(pq_->num_tables());
  size_t progress_nodes = 0;
  for (const auto& w : workers_) progress_nodes += w->progress.num_nodes();
  if (shared_ != nullptr) progress_nodes += shared_->num_progress_nodes();
  size_t result_bytes = result_.bytes();
  for (const auto& w : workers_) result_bytes += w->local.bytes();
  return result_bytes +
         progress_nodes * (sizeof(void*) * 4 + sizeof(int64_t) * m / 2) +
         uct_.num_nodes() * (sizeof(void*) * 4 + 24 * m / 2);
}

void SkinnerCEngine::StartThreads() {
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    threads_.emplace_back([this, worker = w.get()] { WorkerMain(worker); });
  }
}

void SkinnerCEngine::StopThreads() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  shutdown_ = false;
}

void SkinnerCEngine::DispatchSlice(const std::vector<int>& order) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stealing()) {
      AdaptiveSplit(order[0]);
      BuildSliceWork(order[0]);
    }
    slice_order_ = &order;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void SkinnerCEngine::WorkerMain(Worker* w) {
  uint64_t seen = 0;
  for (;;) {
    std::vector<int> order;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      order = *slice_order_;
    }
    if (stealing()) {
      RunWorkerSliceStealing(w, order);
    } else {
      RunWorkerSlice(w, order);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

Status SkinnerCEngine::Run(ResultSet* out) {
  if (pq_->trivially_empty()) {
    stats_.final_order = uct_.BestOrder();
    return Status::OK();
  }
  InitWorkers();
  VirtualClock* clock = pq_->clock();
  const size_t T = workers_.size();
  if (T > 1) StartThreads();

  while (!finished_) {
    if (clock->now() >= opts_.deadline) {
      stats_.timed_out = true;
      break;
    }
    // Any table fully consumed as a leftmost table => result complete.
    if (CompletedTable()) {
      finished_ = true;
      break;
    }

    std::vector<int> order = uct_.Choose();
    if (T == 1) {
      RunWorkerSlice(workers_[0].get(), order);
    } else {
      DispatchSlice(order);
      // Merge worker effort under the wall-clock model: the slice costs
      // what the slowest worker spent.
      uint64_t max_delta = 0;
      for (auto& w : workers_) {
        uint64_t delta = w->clock.now() - w->merged_clock;
        w->merged_clock = w->clock.now();
        max_delta = std::max(max_delta, delta);
      }
      clock->Tick(max_delta);
    }

    // Merge rewards into the one shared UCT tree (paper 4.4): the slice's
    // reward is the mean of the per-stripe rewards, accumulated in worker
    // order so learning stays deterministic.
    double reward = 0;
    bool all_done = true;
    for (auto& w : workers_) {
      reward += w->slice_reward;
      all_done = all_done && w->slice_done;
    }
    reward /= static_cast<double>(T);
    uct_.RewardUpdate(order, reward);
    ++stats_.slices;
    if (opts_.collect_trace) {
      stats_.order_selections[order] += 1;
      if (stats_.slices % 16 == 1) {
        stats_.tree_growth.emplace_back(stats_.slices, uct_.num_nodes());
      }
      stats_.aux_bytes_trace.push_back(AuxiliaryBytes());
    }
    if (all_done) finished_ = true;
  }
  if (T > 1) StopThreads();

  stats_.worker_busy_cost = 0;
  for (const auto& w : workers_) {
    stats_.worker_busy_cost +=
        workers_.size() > 1 ? w->clock.now() : pq_->clock()->now();
  }
  stats_.uct_nodes = uct_.num_nodes();
  stats_.chunk_splits = shared_ != nullptr ? shared_->num_splits() : 0;
  stats_.progress_nodes = shared_ != nullptr ? shared_->num_progress_nodes()
                                             : 0;
  stats_.intermediate_tuples = 0;
  for (const auto& w : workers_) {
    stats_.progress_nodes += w->progress.num_nodes();
    stats_.intermediate_tuples += w->loop_stats.intermediate_tuples;
  }
  stats_.final_order = uct_.BestOrder();

  // Canonical export: sorted position tuples, so the emitted rows are
  // bit-identical regardless of thread count, parallel mode, shard layout,
  // or thread schedule. Under stealing each worker owns a private result
  // set, so cross-worker duplicates are dropped during the merge here.
  std::vector<PosTuple> sorted;
  if (stealing()) {
    std::vector<const ResultSet*> parts;
    parts.reserve(workers_.size());
    for (const auto& w : workers_) parts.push_back(&w->local);
    ResultSet::MergeSortedUnique(parts, &sorted);
  } else {
    result_.ExportSorted(&sorted);
  }
  stats_.result_tuples = sorted.size();
  stats_.auxiliary_bytes = AuxiliaryBytes();
  for (const PosTuple& t : sorted) out->Append(t);
  return Status::OK();
}

}  // namespace skinner
