#include "server/server.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

namespace skinner {

namespace {

/// Strips a trailing CR (telnet/netcat clients) and surrounding spaces.
std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

/// Splits "<first-word> <rest>"; rest is trimmed and may be empty.
void SplitCommand(const std::string& line, std::string* head,
                  std::string* rest) {
  size_t sp = line.find_first_of(" \t");
  if (sp == std::string::npos) {
    *head = line;
    rest->clear();
    return;
  }
  *head = line.substr(0, sp);
  *rest = Trim(line.substr(sp + 1));
}

/// One-line error message: newlines would break the framing.
std::string Flatten(const std::string& msg) {
  std::string out = msg;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

ServerResponse ErrorResponse(const Status& st) {
  ServerResponse r;
  r.text = "ERR ";
  r.text += StatusCodeToken(st.code());
  if (!st.message().empty()) {
    r.text += ' ';
    r.text += Flatten(st.message());
  }
  r.text += '\n';
  return r;
}

void AppendResultLines(const QueryOutput& out, std::string* text) {
  for (const auto& row : out.result.rows) {
    text->append("ROW");
    for (size_t i = 0; i < row.size(); ++i) {
      text->push_back(i == 0 ? ' ' : '\t');
      text->append(EscapeField(row[i].ToString()));
    }
    text->push_back('\n');
  }
  std::ostringstream tail;
  tail << "OK rows=" << out.result.rows.size()
       << " cost=" << out.stats.total_cost << "\n";
  text->append(tail.str());
}

/// Wall time of one admitted execution, in whole microseconds.
uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string EscapeField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::vector<Value>> ParseLiteralList(const std::string& text) {
  std::vector<Value> values;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i >= n) break;
    if (text[i] == '\'') {
      // 'string' with '' as the escaped quote.
      std::string s;
      ++i;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {
            s.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        s.push_back(text[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal");
      }
      values.push_back(Value::String(std::move(s)));
      continue;
    }
    size_t start = i;
    while (i < n && text[i] != ' ' && text[i] != '\t') ++i;
    std::string tok = text.substr(start, i - start);
    std::string upper = tok;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    if (upper == "NULL") {
      values.push_back(Value::Null());
      continue;
    }
    const bool looks_double = tok.find_first_of(".eE") != std::string::npos;
    char* end = nullptr;
    if (looks_double) {
      double d = std::strtod(tok.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError("bad literal: " + tok);
      }
      values.push_back(Value::Double(d));
    } else {
      long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || end == tok.c_str()) {
        return Status::ParseError("bad literal: " + tok);
      }
      values.push_back(Value::Int(static_cast<int64_t>(v)));
    }
  }
  return values;
}

// ---------------------------------------------------------------------------
// ServerCore
// ---------------------------------------------------------------------------

ServerCore::ServerCore(Database* db, ServerOptions opts)
    : db_(db), opts_(std::move(opts)) {}

ServerCore::~ServerCore() = default;

Result<std::unique_ptr<ServerConnection>> ServerCore::Connect() {
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::ShuttingDown("server is shutting down");
    }
    if (active_ >= opts_.max_sessions) {
      ++conn_shed_;
      return Status::Overloaded("too many sessions");
    }
    ++active_;
    ++accepted_;
  }
  session = db_->CreateSession(opts_.defaults);
  return std::unique_ptr<ServerConnection>(
      new ServerConnection(this, std::move(session)));
}

void ServerCore::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  db_->scheduler()->Drain();
}

bool ServerCore::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutting_down_;
}

void ServerCore::RecordLatency(uint64_t session_id, uint64_t micros) {
  // Bucket = floor(log2(micros)), i.e. bucket b holds [2^b, 2^{b+1}) us;
  // sub-microsecond latencies land in bucket 0.
  size_t b = 0;
  for (uint64_t v = micros >> 1; v != 0 && b + 1 < kLatencyBuckets; v >>= 1) {
    ++b;
  }
  std::lock_guard<std::mutex> lock(mu_);
  LatencyHist& h = latency_[session_id];
  ++h.count;
  ++h.buckets[b];
}

namespace {

/// The q-quantile of a log2 histogram, reported as its bucket's upper
/// bound in milliseconds (conservative: the true latency is below it).
double HistQuantileMs(const std::array<uint64_t, 40>& buckets, uint64_t count,
                      double q) {
  if (count == 0) return 0;
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count) + 0.5);
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= target && seen > 0) {
      return static_cast<double>(uint64_t{1} << (b + 1)) / 1000.0;
    }
  }
  return static_cast<double>(uint64_t{1} << buckets.size()) / 1000.0;
}

}  // namespace

ServerStats ServerCore::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.connections_accepted = accepted_;
    s.connections_shed = conn_shed_;
    s.connections_active = active_;
    s.queries_ok = queries_ok_;
    s.queries_error = queries_error_;
    s.queries_shed = queries_shed_;
    s.statements_prepared = statements_prepared_;
    s.cache_publish_throttled = cache_publish_throttled_;
    for (const auto& [sid, h] : latency_) {
      ServerStats::SessionLatency out;
      out.count = h.count;
      out.p50_ms = HistQuantileMs(h.buckets, h.count, 0.50);
      out.p99_ms = HistQuantileMs(h.buckets, h.count, 0.99);
      s.session_latency.emplace_back(sid, out);
    }
  }
  const Database::WalStats w = db_->wal_stats();
  s.wal_appends = w.wal_appends;
  s.wal_bytes = w.wal_bytes;
  s.recovery_replayed_records = w.recovery_replayed_records;
  s.checkpoints = w.checkpoints;
  s.scheduler = db_->scheduler()->stats();
  return s;
}

// ---------------------------------------------------------------------------
// ServerConnection
// ---------------------------------------------------------------------------

ServerConnection::ServerConnection(ServerCore* core,
                                   std::unique_ptr<Session> session)
    : core_(core), session_(std::move(session)) {}

ServerConnection::~ServerConnection() {
  std::lock_guard<std::mutex> lock(core_->mu_);
  --core_->active_;
}

ExecOptions ServerConnection::EffectiveOptions() {
  ExecOptions eopts = session_->defaults();
  if (cache_bytes_used_ >= core_->opts_.quota.cache_bytes_share) {
    eopts.cache_read_only = true;
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->cache_publish_throttled_;
  }
  return eopts;
}

ServerResponse ServerConnection::HandleLine(const std::string& raw) {
  const std::string line = Trim(raw);
  if (line.empty()) {
    return ErrorResponse(Status::InvalidArgument("empty command"));
  }
  std::string cmd;
  std::string rest;
  SplitCommand(line, &cmd, &rest);
  for (char& c : cmd) c = static_cast<char>(std::toupper(c));

  if (cmd == "PING") {
    return ServerResponse{"OK\n", false, false};
  }
  if (cmd == "QUIT") {
    return ServerResponse{"OK bye\n", true, false};
  }
  if (cmd == "SHUTDOWN") {
    {
      // Stop admitting immediately; the transport drains the scheduler
      // (ServerCore::Shutdown) once this response is written.
      std::lock_guard<std::mutex> lock(core_->mu_);
      core_->shutting_down_ = true;
    }
    return ServerResponse{"OK draining\n", true, true};
  }
  if (cmd == "STATS") {
    return RunStats();
  }
  if (core_->shutting_down()) {
    return ErrorResponse(Status::ShuttingDown("server is shutting down"));
  }
  if (cmd == "Q") {
    if (rest.empty()) {
      return ErrorResponse(Status::InvalidArgument("Q needs a SELECT"));
    }
    return RunQuery(rest);
  }
  if (cmd == "X") {
    if (rest.empty()) {
      return ErrorResponse(Status::InvalidArgument("X needs a statement"));
    }
    Status st = core_->db_->Execute(rest);
    std::lock_guard<std::mutex> lock(core_->mu_);
    if (!st.ok()) {
      ++core_->queries_error_;
      return ErrorResponse(st);
    }
    ++core_->queries_ok_;
    return ServerResponse{"OK\n", false, false};
  }
  if (cmd == "CHECKPOINT") {
    Status st = core_->db_->Checkpoint();
    std::lock_guard<std::mutex> lock(core_->mu_);
    if (!st.ok()) {
      ++core_->queries_error_;
      return ErrorResponse(st);
    }
    ++core_->queries_ok_;
    std::ostringstream os;
    os << "OK checkpoints=" << core_->db_->wal_stats().checkpoints << "\n";
    return ServerResponse{os.str(), false, false};
  }
  if (cmd == "P") {
    return RunPrepare(rest);
  }
  if (cmd == "E") {
    return RunExecute(rest);
  }
  return ErrorResponse(
      Status::Unsupported("unknown command: " + Flatten(cmd)));
}

ServerResponse ServerConnection::RunQuery(const std::string& sql) {
  const ExecOptions eopts = EffectiveOptions();
  std::optional<Result<QueryOutput>> out;
  const auto start = std::chrono::steady_clock::now();
  Status admitted = core_->db_->scheduler()->SubmitAndWait(
      session_->id(), [&] { out.emplace(session_->Query(sql, eopts)); });
  if (!admitted.ok()) {
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->queries_shed_;
    return ErrorResponse(admitted);
  }
  // Latency covers queueing + execution of every admitted query (errors
  // included — the client waited either way); shed queries never ran.
  core_->RecordLatency(session_->id(), ElapsedMicros(start));
  if (!out->ok()) {
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->queries_error_;
    return ErrorResponse(out->status());
  }
  cache_bytes_used_ += out->value().stats.cache_bytes_published;
  {
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->queries_ok_;
  }
  ServerResponse r;
  AppendResultLines(out->value(), &r.text);
  return r;
}

ServerResponse ServerConnection::RunPrepare(const std::string& rest) {
  std::string name;
  std::string sql;
  SplitCommand(rest, &name, &sql);
  if (!ValidName(name) || sql.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("usage: P <name> <select with ?>"));
  }
  const bool replaces = statements_.count(name) > 0;
  if (!replaces &&
      statements_.size() >=
          static_cast<size_t>(core_->opts_.quota.max_prepared_statements)) {
    return ErrorResponse(Status::QuotaExceeded(
        "prepared statement quota reached"));
  }
  Result<std::unique_ptr<PreparedStatement>> stmt = session_->Prepare(sql);
  if (!stmt.ok()) {
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->queries_error_;
    return ErrorResponse(stmt.status());
  }
  const int params = stmt.value()->num_params();
  statements_[name] = std::move(stmt.value());
  {
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->statements_prepared_;
  }
  std::ostringstream os;
  os << "OK params=" << params << "\n";
  return ServerResponse{os.str(), false, false};
}

ServerResponse ServerConnection::RunExecute(const std::string& rest) {
  std::string name;
  std::string literals;
  SplitCommand(rest, &name, &literals);
  if (!ValidName(name)) {
    return ErrorResponse(
        Status::InvalidArgument("usage: E <name> <literals>"));
  }
  auto it = statements_.find(name);
  if (it == statements_.end()) {
    return ErrorResponse(Status::NotFound("no prepared statement: " + name));
  }
  Result<std::vector<Value>> params = ParseLiteralList(literals);
  if (!params.ok()) {
    return ErrorResponse(params.status());
  }
  const ExecOptions eopts = EffectiveOptions();
  PreparedStatement* stmt = it->second.get();
  std::optional<Result<QueryOutput>> out;
  const auto start = std::chrono::steady_clock::now();
  Status admitted = core_->db_->scheduler()->SubmitAndWait(
      session_->id(),
      [&] { out.emplace(stmt->Execute(params.value(), eopts)); });
  if (!admitted.ok()) {
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->queries_shed_;
    return ErrorResponse(admitted);
  }
  core_->RecordLatency(session_->id(), ElapsedMicros(start));
  if (!out->ok()) {
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->queries_error_;
    return ErrorResponse(out->status());
  }
  cache_bytes_used_ += out->value().stats.cache_bytes_published;
  {
    std::lock_guard<std::mutex> lock(core_->mu_);
    ++core_->queries_ok_;
  }
  ServerResponse r;
  AppendResultLines(out->value(), &r.text);
  return r;
}

ServerResponse ServerConnection::RunStats() {
  const ServerStats s = core_->stats();
  std::ostringstream os;
  os << "STAT connections_accepted=" << s.connections_accepted << "\n"
     << "STAT connections_shed=" << s.connections_shed << "\n"
     << "STAT connections_active=" << s.connections_active << "\n"
     << "STAT queries_ok=" << s.queries_ok << "\n"
     << "STAT queries_error=" << s.queries_error << "\n"
     << "STAT queries_shed=" << s.queries_shed << "\n"
     << "STAT statements_prepared=" << s.statements_prepared << "\n"
     << "STAT cache_publish_throttled=" << s.cache_publish_throttled << "\n"
     << "STAT cache_bytes_used=" << cache_bytes_used_ << "\n"
     << "STAT wal_appends=" << s.wal_appends << "\n"
     << "STAT wal_bytes=" << s.wal_bytes << "\n"
     << "STAT recovery_replayed_records=" << s.recovery_replayed_records
     << "\n"
     << "STAT checkpoints=" << s.checkpoints << "\n"
     << "STAT sched_workers=" << s.scheduler.workers << "\n"
     << "STAT sched_submitted=" << s.scheduler.submitted << "\n"
     << "STAT sched_completed=" << s.scheduler.completed << "\n"
     << "STAT sched_shed_overload=" << s.scheduler.shed_overload << "\n"
     << "STAT sched_shed_quota=" << s.scheduler.shed_quota << "\n"
     << "STAT sched_shed_draining=" << s.scheduler.shed_draining << "\n"
     << "STAT sched_queue_depth=" << s.scheduler.queue_depth << "\n"
     << "STAT sched_peak_queue_depth=" << s.scheduler.peak_queue_depth << "\n"
     << "STAT sched_active=" << s.scheduler.active << "\n"
     << "STAT sched_engine_thread_budget=" << s.scheduler.engine_thread_budget
     << "\n"
     << "STAT sched_leased_threads=" << s.scheduler.leased_threads << "\n"
     << "STAT sched_lease_grants=" << s.scheduler.lease_grants << "\n"
     << "STAT sched_lease_capped=" << s.scheduler.lease_capped << "\n";
  for (const auto& [sid, lat] : s.session_latency) {
    os << "STAT session_" << sid << "_queries=" << lat.count << "\n"
       << "STAT session_" << sid << "_p50_ms=" << lat.p50_ms << "\n"
       << "STAT session_" << sid << "_p99_ms=" << lat.p99_ms << "\n";
  }
  os << "OK\n";
  return ServerResponse{os.str(), false, false};
}

}  // namespace skinner
