// skinner_serve: the SkinnerDB network server. One shared Database, one
// global Scheduler; every client connection becomes a Session multiplexed
// onto it with admission control and weighted fairness (see
// server/server.h for the line protocol).
//
//   skinner_serve [--port N] [--workers N] [--queue N] [--inflight N]
//                 [--max-sessions N] [--init FILE] [--db DIR] [--fsync]
//   skinner_serve --client HOST PORT
//
// --port 0 binds an ephemeral port; the bound port is always announced as
//   LISTENING port=<p>
// on stdout, so scripts can scrape it. --init runs the ';'-separated DDL/
// DML statements of FILE before serving (schema + data setup). The server
// exits after a client issues SHUTDOWN (graceful: admitted queries
// finish).
//
// --db DIR serves a durable database rooted at DIR: the last checkpoint
// snapshot is loaded, the write-ahead log replayed (recovery), and every
// DDL/DML is WAL-logged. --fsync additionally fsyncs each WAL append
// (FsyncPolicy::kAlways). Without --db the database is in-memory.
//
// --client: a minimal scripted client — reads protocol lines from stdin,
// sends each, prints response lines until the terminal OK/ERR line.

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "api/database.h"
#include "server/server.h"
#include "server/tcp_server.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: skinner_serve [--port N] [--workers N] [--queue N]\n"
               "                     [--inflight N] [--max-sessions N]\n"
               "                     [--init FILE] [--db DIR] [--fsync]\n"
               "       skinner_serve --client HOST PORT\n");
  return 2;
}

/// Executes the ';'-separated statements of `path` against `db`.
bool RunInitFile(skinner::Database* db, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open init file: %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string all = ss.str();
  size_t start = 0;
  while (start < all.size()) {
    size_t semi = all.find(';', start);
    size_t end = semi == std::string::npos ? all.size() : semi;
    std::string stmt = all.substr(start, end - start);
    start = end + 1;
    // Skip pure-whitespace fragments between semicolons.
    if (stmt.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    skinner::Status st = db->Execute(stmt);
    if (!st.ok()) {
      std::fprintf(stderr, "init statement failed: %s\n",
                   st.ToString().c_str());
      return false;
    }
  }
  return true;
}

/// --client mode: scripted request/response over one connection.
int RunClient(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    hostent* he = ::gethostbyname(host.c_str());
    if (he == nullptr || he->h_addrtype != AF_INET) {
      std::fprintf(stderr, "cannot resolve host: %s\n", host.c_str());
      ::close(fd);
      return 1;
    }
    std::memcpy(&addr.sin_addr, he->h_addr_list[0], sizeof(in_addr));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }

  std::string inbuf;
  char chunk[4096];
  // Reads one '\n'-terminated response line; false on disconnect.
  auto read_line = [&](std::string* line) {
    while (true) {
      size_t nl = inbuf.find('\n');
      if (nl != std::string::npos) {
        *line = inbuf.substr(0, nl);
        inbuf.erase(0, nl + 1);
        return true;
      }
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      inbuf.append(chunk, static_cast<size_t>(n));
    }
  };
  auto write_all = [&](const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::write(fd, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  };

  std::string line;
  int rc = 0;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!write_all(line + "\n")) {
      std::fprintf(stderr, "disconnected\n");
      rc = 1;
      break;
    }
    bool closed = false;
    while (true) {
      std::string resp;
      if (!read_line(&resp)) {
        std::fprintf(stderr, "disconnected\n");
        closed = true;
        rc = 1;
        break;
      }
      std::printf("%s\n", resp.c_str());
      if (resp.rfind("OK", 0) == 0 || resp.rfind("ERR", 0) == 0) break;
    }
    if (closed) break;
    std::string head = line.substr(0, line.find_first_of(" \t"));
    for (char& c : head) c = static_cast<char>(std::toupper(c));
    if (head == "QUIT" || head == "SHUTDOWN") break;
  }
  ::close(fd);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 4711;
  int max_sessions = 64;
  std::string init_file;
  std::string db_dir;
  skinner::FsyncPolicy fsync = skinner::FsyncPolicy::kNever;
  skinner::SchedulerOptions sched;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--client") {
      if (i + 2 >= argc) return Usage();
      return RunClient(argv[i + 1], std::atoi(argv[i + 2]));
    }
    if (arg == "--port") {
      if (!next_int(&port)) return Usage();
    } else if (arg == "--workers") {
      if (!next_int(&sched.num_workers)) return Usage();
    } else if (arg == "--queue") {
      int q = 0;
      if (!next_int(&q) || q <= 0) return Usage();
      sched.max_queue_depth = static_cast<size_t>(q);
    } else if (arg == "--inflight") {
      if (!next_int(&sched.max_inflight_per_session)) return Usage();
    } else if (arg == "--max-sessions") {
      if (!next_int(&max_sessions)) return Usage();
    } else if (arg == "--init") {
      if (i + 1 >= argc) return Usage();
      init_file = argv[++i];
    } else if (arg == "--db") {
      if (i + 1 >= argc) return Usage();
      db_dir = argv[++i];
    } else if (arg == "--fsync") {
      fsync = skinner::FsyncPolicy::kAlways;
    } else {
      return Usage();
    }
  }

  std::unique_ptr<skinner::Database> db;
  if (db_dir.empty()) {
    db = std::make_unique<skinner::Database>(sched);
  } else {
    auto opened = skinner::Database::Open(db_dir, fsync, sched);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s failed: %s\n", db_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    db = opened.MoveValue();
    std::printf("RECOVERED records=%llu\n",
                static_cast<unsigned long long>(
                    db->wal_stats().recovery_replayed_records));
  }
  if (!init_file.empty() && !RunInitFile(db.get(), init_file)) return 1;

  skinner::ServerOptions opts;
  opts.max_sessions = max_sessions;
  // A server exists to share: cross-query caching on by default (bounded
  // per session by the cache byte-share quota).
  opts.defaults.use_prepared_cache = true;

  skinner::ServerCore core(db.get(), opts);
  skinner::TcpServer server(&core);
  skinner::Status st = server.Start(port);
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING port=%d\n", server.port());
  std::fflush(stdout);
  server.Wait();
  std::printf("shutdown complete\n");
  return 0;
}
