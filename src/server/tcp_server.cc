#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace skinner {

namespace {

/// write() the whole buffer, retrying on EINTR/short writes.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(ServerCore* core) : core_(core) {}

TcpServer::~TcpServer() { Shutdown(); }

Status TcpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed: shutting down
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (shutdown_requested_.load()) {
      ::close(fd);
      break;
    }
    const size_t slot = client_fds_.size();
    client_fds_.push_back(fd);
    client_threads_.emplace_back([this, fd, slot] {
      ClientLoop(fd);
      std::lock_guard<std::mutex> inner(threads_mu_);
      client_fds_[slot] = -1;
      ::close(fd);
    });
  }
}

void TcpServer::ClientLoop(int fd) {
  Result<std::unique_ptr<ServerConnection>> conn = core_->Connect();
  if (!conn.ok()) {
    std::string err = "ERR ";
    err += StatusCodeToken(conn.status().code());
    err += ' ';
    err += conn.status().message();
    err += '\n';
    WriteAll(fd, err);
    return;
  }
  std::string buffer;
  char chunk[4096];
  while (true) {
    size_t nl = buffer.find('\n');
    if (nl == std::string::npos) {
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // disconnect or shutdown
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    ServerResponse resp = conn.value()->HandleLine(line);
    if (!WriteAll(fd, resp.text)) break;
    if (resp.shutdown) {
      shutdown_requested_.store(true);
      std::lock_guard<std::mutex> lock(shutdown_mu_);
      shutdown_cv_.notify_all();
      break;
    }
    if (resp.close) break;
  }
}

void TcpServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_.load(); });
  }
  Shutdown();
}

void TcpServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (done_) return;
    done_ = true;
    shutdown_requested_.store(true);
    shutdown_cv_.notify_all();
  }
  // Close the listener to break accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain: every admitted query finishes; new ones are rejected.
  core_->Shutdown();
  // Unblock idle connection reads, then join. Client threads null their
  // fd slot before closing it, so a live slot is safe to shutdown().
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (int fd : client_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : client_threads_) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

}  // namespace skinner
