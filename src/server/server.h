#ifndef SKINNER_SERVER_SERVER_H_
#define SKINNER_SERVER_SERVER_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/prepared_statement.h"
#include "api/session.h"
#include "common/scheduler.h"

namespace skinner {

/// Per-connection resource quotas (see ServerOptions). A connection past a
/// quota gets a clean `ERR QUOTA` (statements) or silently stops publishing
/// into the shared PreparedCache (cache byte share) — it never degrades
/// other sessions.
struct SessionQuota {
  /// Prepared statements a connection may hold at once (P command).
  int max_prepared_statements = 64;
  /// Bytes of pre-processing artifacts one connection may publish into the
  /// shared PreparedCache before its executions turn cache_read_only
  /// (reads still served; its repeated work just stays unshared).
  uint64_t cache_bytes_share = 16ull << 20;
};

struct ServerOptions {
  /// Concurrent client connections; excess Connects are shed with
  /// Status::Overloaded before a Session is created.
  int max_sessions = 64;
  SessionQuota quota;
  /// Base ExecOptions of every connection's session (engine, budgets...).
  ExecOptions defaults;
};

/// Aggregate serving counters (STATS command / bench_server). Scheduler
/// admission counters live in `scheduler` (see Scheduler::Stats).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;  // max_sessions exceeded
  int connections_active = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_error = 0;   // parse/bind/execution errors
  uint64_t queries_shed = 0;    // scheduler admission: overload/quota/drain
  uint64_t statements_prepared = 0;
  /// Executions forced cache_read_only by an exhausted byte share.
  uint64_t cache_publish_throttled = 0;
  /// Durability counters mirrored from Database::wal_stats() (all zero for
  /// an in-memory database).
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t recovery_replayed_records = 0;
  uint64_t checkpoints = 0;
  /// Per-session wall-clock latency of admitted Q/E executions, estimated
  /// from log2-bucketed histograms (each percentile reports its bucket's
  /// upper bound, so estimates are conservative and the accounting is O(1)
  /// per query and O(buckets) per STATS call).
  struct SessionLatency {
    uint64_t count = 0;  // admitted executions measured
    double p50_ms = 0;
    double p99_ms = 0;
  };
  std::vector<std::pair<uint64_t, SessionLatency>> session_latency;  // by id
  Scheduler::Stats scheduler;
};

/// One line of protocol handled; `text` holds the complete response
/// (every line '\n'-terminated, the last line always `OK ...` or
/// `ERR <TOKEN> ...`).
struct ServerResponse {
  std::string text;
  bool close = false;     // QUIT: the transport should close after writing
  bool shutdown = false;  // SHUTDOWN: the transport should stop the server
};

class ServerConnection;

/// The transport-agnostic core of skinner_serve: multiplexes N client
/// connections onto one shared Database through its one global Scheduler.
/// Each Connect() yields a ServerConnection owning a Session (independent
/// seed stream, stats roll-up) plus its prepared-statement namespace and
/// cache byte-share accounting; every query a connection runs is submitted
/// to the scheduler under the session's id, so admission control
/// (OVERLOADED), per-session fairness (weighted FIFO, inflight caps) and
/// graceful drain apply uniformly whatever the transport.
///
/// Protocol (line-oriented; see HandleLine):
///   Q <select sql>          -> ROW <v1>\t<v2>... lines, then OK rows=N cost=C
///   X <ddl/dml sql>         -> OK (CREATE/INSERT/DROP/UPDATE/DELETE; DML
///                              runs under the exclusive DDL lock and is
///                              WAL-logged on a durable database)
///   P <name> <sql with ?>   -> OK params=K (SELECT, UPDATE or DELETE)
///   E <name> <literals>     -> ROW lines, then OK rows=N cost=C
///   CHECKPOINT              -> OK checkpoints=N (compact + snapshot + WAL reset)
///   STATS                   -> STAT key=value lines, then OK
///   PING                    -> OK
///   QUIT                    -> OK bye (connection closes)
///   SHUTDOWN                -> OK draining (server drains, then exits)
/// Errors: ERR <TOKEN> <message> — TOKEN is the stable Status wire code
/// (common/status.h), e.g. ERR PARSE, ERR OVERLOADED, ERR QUOTA.
///
/// Thread-safety: ServerCore methods are thread-safe; each
/// ServerConnection must be driven by one thread at a time (the usual
/// one-thread-per-connection transport), while distinct connections run
/// fully concurrently.
class ServerCore {
 public:
  /// `db` must outlive the core. The scheduler used for admission is
  /// db->scheduler() — construct the Database with SchedulerOptions to
  /// bound its queue (see Database(const SchedulerOptions&)).
  explicit ServerCore(Database* db, ServerOptions opts = {});
  ~ServerCore();
  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Admits one client: sheds with Overloaded past max_sessions and with
  /// ShuttingDown after Shutdown() began. The connection must not outlive
  /// the core.
  Result<std::unique_ptr<ServerConnection>> Connect();

  /// Graceful shutdown: stop admitting connections and queries, drain the
  /// scheduler (every admitted query finishes), then return. Idempotent.
  /// Must not be called from inside a query (i.e. from a pool worker).
  void Shutdown();

  bool shutting_down() const;
  ServerStats stats() const;
  Database* database() { return db_; }
  const ServerOptions& options() const { return opts_; }

 private:
  friend class ServerConnection;

  /// log2 microsecond buckets: bucket b counts latencies in [2^b, 2^{b+1})
  /// microseconds. 40 buckets cover up to ~2^41 us (~25 days) — effectively
  /// unbounded for a query.
  static constexpr size_t kLatencyBuckets = 40;
  struct LatencyHist {
    uint64_t count = 0;
    std::array<uint64_t, kLatencyBuckets> buckets{};
  };
  /// Folds one admitted execution's wall time into its session's histogram.
  void RecordLatency(uint64_t session_id, uint64_t micros);

  Database* const db_;
  const ServerOptions opts_;

  mutable std::mutex mu_;
  bool shutting_down_ = false;
  int active_ = 0;
  uint64_t accepted_ = 0;
  uint64_t conn_shed_ = 0;
  uint64_t queries_ok_ = 0;
  uint64_t queries_error_ = 0;
  uint64_t queries_shed_ = 0;
  uint64_t statements_prepared_ = 0;
  uint64_t cache_publish_throttled_ = 0;
  std::map<uint64_t, LatencyHist> latency_;  // by session id; guarded by mu_
};

/// One client connection: a Session plus protocol state. Created by
/// ServerCore::Connect(); destroying it releases the slot.
class ServerConnection {
 public:
  ~ServerConnection();
  ServerConnection(const ServerConnection&) = delete;
  ServerConnection& operator=(const ServerConnection&) = delete;

  /// Handles one protocol line (without its trailing newline) and returns
  /// the full response to write back.
  ServerResponse HandleLine(const std::string& line);

  uint64_t session_id() const { return session_->id(); }
  Session* session() { return session_.get(); }
  /// Cache bytes this connection has published so far (quota accounting).
  uint64_t cache_bytes_used() const { return cache_bytes_used_; }

 private:
  friend class ServerCore;
  ServerConnection(ServerCore* core, std::unique_ptr<Session> session);

  /// Runs one SELECT/statement execution through the scheduler under this
  /// connection's session id and formats ROW + OK lines.
  ServerResponse RunQuery(const std::string& sql);
  ServerResponse RunPrepare(const std::string& rest);
  ServerResponse RunExecute(const std::string& rest);
  ServerResponse RunStats();

  /// Session defaults with the cache byte-share quota applied.
  ExecOptions EffectiveOptions();

  ServerCore* const core_;
  std::unique_ptr<Session> session_;
  std::map<std::string, std::unique_ptr<PreparedStatement>> statements_;
  uint64_t cache_bytes_used_ = 0;
};

/// Parses a space-separated literal list of the E command: integers,
/// doubles, NULL, and 'single-quoted strings' with '' as the escaped quote.
Result<std::vector<Value>> ParseLiteralList(const std::string& text);

/// Escapes one result value for a ROW line: backslash, tab and newline
/// become \\, \t and \n so rows stay one line with tab-separated fields.
std::string EscapeField(const std::string& field);

}  // namespace skinner

#endif  // SKINNER_SERVER_SERVER_H_
