#ifndef SKINNER_SERVER_TCP_SERVER_H_
#define SKINNER_SERVER_TCP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/server.h"

namespace skinner {

/// The thin POSIX TCP transport of skinner_serve: an accept loop handing
/// each connection to its own thread, which frames '\n'-terminated lines
/// and feeds them to a ServerConnection (server.h — where all protocol,
/// scheduling and quota logic lives).
///
/// Lifecycle: Start() binds/listens and spawns the accept thread;
/// Wait() blocks until a client's SHUTDOWN command (or Shutdown()) stopped
/// the server; Shutdown() stops accepting, drains the core (admitted
/// queries finish) and joins every connection thread. The destructor calls
/// Shutdown().
class TcpServer {
 public:
  explicit TcpServer(ServerCore* core);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts
  /// accepting.
  Status Start(int port);

  /// The bound port (valid after Start succeeded).
  int port() const { return port_; }

  /// Blocks until the server has been shut down (SHUTDOWN command or a
  /// concurrent Shutdown() call).
  void Wait();

  /// Graceful stop: close the listener, drain the core, join every
  /// connection thread. Idempotent, thread-safe.
  void Shutdown();

  bool shutdown_requested() const { return shutdown_requested_.load(); }

 private:
  void AcceptLoop();
  void ClientLoop(int fd);

  ServerCore* const core_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> done_{false};
  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::vector<std::thread> client_threads_;
  /// Parallel to client_threads_: the connection's fd, or -1 once its
  /// thread has closed it (guarded by threads_mu_).
  std::vector<int> client_fds_;
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
};

}  // namespace skinner

#endif  // SKINNER_SERVER_TCP_SERVER_H_
