#ifndef SKINNER_SQL_BINDER_H_
#define SKINNER_SQL_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/udf.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace skinner {

struct BoundTable {
  const Table* table;
  std::string alias;
};

struct BoundSelectItem {
  std::unique_ptr<Expr> expr;
  std::string name;  // output column label
};

struct BoundOrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

/// A fully resolved SELECT: every column reference carries table/column
/// indices, every function points at its UDF, every node has a type.
/// This is the input to query-info analysis and all execution engines.
struct BoundQuery {
  std::vector<BoundTable> tables;
  std::unique_ptr<Expr> where;  // may be null
  std::vector<BoundSelectItem> select;
  bool distinct = false;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::vector<BoundOrderItem> order_by;
  int64_t limit = -1;
  bool has_aggregates = false;

  /// `?` placeholders of a parameterized template (Session::Prepare). The
  /// binder infers each parameter's type from its context (the sibling of
  /// a comparison, LIKE's pattern side, arithmetic operands); a parameter
  /// whose context is ambiguous stays param_known=false and accepts any
  /// value type. Only PreparedStatement may execute a query with
  /// num_params > 0 — every other path rejects it with an error Status.
  int num_params = 0;
  std::vector<DataType> param_types;  // inferred; indexed by ordinal
  std::vector<bool> param_known;      // false: type could not be inferred

  int num_tables() const { return static_cast<int>(tables.size()); }

  /// Deep copy (expression trees cloned; Table pointers shared). Used by
  /// PreparedStatement to instantiate a template per execution.
  std::unique_ptr<BoundQuery> Clone() const;
  std::vector<const Table*> TablePtrs() const {
    std::vector<const Table*> out;
    out.reserve(tables.size());
    for (const auto& t : tables) out.push_back(t.table);
    return out;
  }
};

/// A fully resolved UPDATE or DELETE: the target table, SET expressions
/// with resolved column ordinals (empty for DELETE) and the optional WHERE
/// predicate, all bound against the single target table. Shares the
/// BoundQuery parameter-inference machinery so `?`-parameterized DML works
/// through PreparedStatement.
struct BoundMutation {
  Statement::Kind kind = Statement::Kind::kUpdate;
  Table* table = nullptr;
  std::string table_name;  // as written (for freshness re-lookup)

  struct SetClause {
    int column_idx = -1;
    std::unique_ptr<Expr> expr;
  };
  std::vector<SetClause> sets;  // empty for DELETE
  std::unique_ptr<Expr> where;  // may be null (affects every row)

  int num_params = 0;
  std::vector<DataType> param_types;
  std::vector<bool> param_known;

  /// Deep copy (expression trees cloned; the Table pointer shared). Used
  /// by PreparedStatement to instantiate the template per execution.
  std::unique_ptr<BoundMutation> Clone() const;
};

/// Binds a parsed SELECT against the catalog. `stmt` is consumed. String
/// literals are interned into the catalog's pool so engines can compare
/// dictionary codes instead of strings.
Result<BoundQuery> BindSelect(SelectStmt* stmt, Catalog* catalog,
                              const UdfRegistry* udfs);

/// Binds UPDATE / DELETE against the catalog (`stmt` consumed). SET
/// expressions and WHERE may reference the target table's columns; a bare
/// `?` in `SET col = ?` takes the column's type.
Result<BoundMutation> BindUpdate(UpdateStmt* stmt, Catalog* catalog,
                                 const UdfRegistry* udfs);
Result<BoundMutation> BindDelete(DeleteStmt* stmt, Catalog* catalog,
                                 const UdfRegistry* udfs);

/// Recomputes out_type bottom-up and re-applies the binder's operator type
/// checks over an already-bound expression tree. Column references, UDF
/// bindings and literal pool ids are left untouched. Used after parameter
/// substitution so that a template instantiated with concrete values types
/// (and errors) exactly like the literal-substituted SQL text would.
Status RebindTypes(Expr* e);

}  // namespace skinner

#endif  // SKINNER_SQL_BINDER_H_
