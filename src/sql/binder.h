#ifndef SKINNER_SQL_BINDER_H_
#define SKINNER_SQL_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/udf.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace skinner {

struct BoundTable {
  const Table* table;
  std::string alias;
};

struct BoundSelectItem {
  std::unique_ptr<Expr> expr;
  std::string name;  // output column label
};

struct BoundOrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

/// A fully resolved SELECT: every column reference carries table/column
/// indices, every function points at its UDF, every node has a type.
/// This is the input to query-info analysis and all execution engines.
struct BoundQuery {
  std::vector<BoundTable> tables;
  std::unique_ptr<Expr> where;  // may be null
  std::vector<BoundSelectItem> select;
  bool distinct = false;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::vector<BoundOrderItem> order_by;
  int64_t limit = -1;
  bool has_aggregates = false;

  int num_tables() const { return static_cast<int>(tables.size()); }
  std::vector<const Table*> TablePtrs() const {
    std::vector<const Table*> out;
    out.reserve(tables.size());
    for (const auto& t : tables) out.push_back(t.table);
    return out;
  }
};

/// Binds a parsed SELECT against the catalog. `stmt` is consumed. String
/// literals are interned into the catalog's pool so engines can compare
/// dictionary codes instead of strings.
Result<BoundQuery> BindSelect(SelectStmt* stmt, Catalog* catalog,
                              const UdfRegistry* udfs);

}  // namespace skinner

#endif  // SKINNER_SQL_BINDER_H_
