#ifndef SKINNER_SQL_LEXER_H_
#define SKINNER_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace skinner {

enum class TokenType {
  kIdent,     // bare identifier (keywords are classified by the parser)
  kInt,       // integer literal
  kDouble,    // floating-point literal
  kString,    // 'quoted string' with '' escape
  kSymbol,    // operator / punctuation: ( ) , . = <> != < <= > >= + - * / %
  kParam,     // ? placeholder (parameterized query templates)
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;   // identifier text (original case), symbol, or literal
  int64_t int_val = 0;
  double double_val = 0;
  size_t pos = 0;     // byte offset in the input, for error messages

  /// Case-insensitive keyword / identifier comparison.
  bool Is(const char* kw) const;
  bool IsSymbol(const char* s) const { return type == TokenType::kSymbol && text == s; }
};

/// Tokenizes a SQL string. Comments (-- to end of line) are skipped.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace skinner

#endif  // SKINNER_SQL_LEXER_H_
