#ifndef SKINNER_SQL_PARSER_H_
#define SKINNER_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace skinner {

/// Parses a single SQL statement (optionally ';'-terminated). Supported:
///   SELECT [DISTINCT] items FROM t [alias] [, ...| JOIN t ON cond ...]
///     [WHERE cond] [GROUP BY exprs] [ORDER BY exprs [DESC]] [LIMIT n]
///   CREATE TABLE name (col TYPE, ...)        TYPE in {INT, DOUBLE, STRING}
///   INSERT INTO name VALUES (lit, ...)[, (...)]
///   DROP TABLE name
///   UPDATE name SET col = expr [, col = expr ...] [WHERE cond]
///   DELETE FROM name [WHERE cond]
/// IN lists, BETWEEN, NOT LIKE and IS [NOT] NULL are desugared during
/// parsing into the core expression algebra.
Result<Statement> ParseSql(const std::string& sql);

}  // namespace skinner

#endif  // SKINNER_SQL_PARSER_H_
