#include "sql/binder.h"

#include "common/str_util.h"

namespace skinner {

namespace {

class Binder {
 public:
  Binder(Catalog* catalog, const UdfRegistry* udfs)
      : catalog_(catalog), udfs_(udfs) {}

  Result<BoundQuery> Bind(SelectStmt* stmt);
  Result<BoundMutation> BindUpdateStmt(UpdateStmt* stmt);
  Result<BoundMutation> BindDeleteStmt(DeleteStmt* stmt);

 private:
  /// Resolves the single target table of a mutation into out_.tables so
  /// the SELECT column-resolution machinery applies unchanged.
  Result<Table*> BindMutationTarget(const std::string& name);
  /// Moves the shared parameter-inference state into `m`.
  void FinishMutation(BoundMutation* m);
  Status BindExpr(Expr* e);
  Status BindColumnRef(Expr* e);

  /// Grows the parameter tables to cover ordinal `idx`.
  void NoteParam(int idx);
  /// True for a `?` whose type has not been inferred yet.
  bool IsOpenParam(const Expr& e) const;
  /// Records the inferred type of parameter node `e` (first inference
  /// wins; a string-vs-numeric conflict is a bind error).
  Status SetParamType(Expr* e, DataType t);

  Catalog* catalog_;
  const UdfRegistry* udfs_;
  BoundQuery out_;
};

void Binder::NoteParam(int idx) {
  if (idx >= out_.num_params) {
    out_.num_params = idx + 1;
    out_.param_types.resize(static_cast<size_t>(out_.num_params),
                            DataType::kInt64);
    out_.param_known.resize(static_cast<size_t>(out_.num_params), false);
  }
}

bool Binder::IsOpenParam(const Expr& e) const {
  return e.kind == ExprKind::kParam &&
         !out_.param_known[static_cast<size_t>(e.param_idx)];
}

Status Binder::SetParamType(Expr* e, DataType t) {
  NoteParam(e->param_idx);
  const size_t i = static_cast<size_t>(e->param_idx);
  auto is_str = [](DataType d) { return d == DataType::kString; };
  if (out_.param_known[i]) {
    if (is_str(out_.param_types[i]) != is_str(t)) {
      return Status::BindError("parameter ? used with conflicting types");
    }
    return Status::OK();
  }
  out_.param_types[i] = t;
  out_.param_known[i] = true;
  e->out_type = t;
  return Status::OK();
}

Status Binder::BindColumnRef(Expr* e) {
  if (!e->table_name.empty()) {
    std::string want = ToLower(e->table_name);
    for (size_t i = 0; i < out_.tables.size(); ++i) {
      if (ToLower(out_.tables[i].alias) == want) {
        int col = out_.tables[i].table->schema().FindColumn(e->column_name);
        if (col < 0) {
          return Status::BindError("no column " + e->column_name + " in " +
                                   e->table_name);
        }
        e->table_idx = static_cast<int>(i);
        e->column_idx = col;
        e->out_type = out_.tables[i].table->schema().column(col).type;
        return Status::OK();
      }
    }
    return Status::BindError("unknown table alias: " + e->table_name);
  }
  // Unqualified: must be unique across FROM tables.
  int found_table = -1;
  int found_col = -1;
  for (size_t i = 0; i < out_.tables.size(); ++i) {
    int col = out_.tables[i].table->schema().FindColumn(e->column_name);
    if (col >= 0) {
      if (found_table >= 0) {
        return Status::BindError("ambiguous column: " + e->column_name);
      }
      found_table = static_cast<int>(i);
      found_col = col;
    }
  }
  if (found_table < 0) {
    return Status::BindError("unknown column: " + e->column_name);
  }
  e->table_idx = found_table;
  e->column_idx = found_col;
  e->out_type =
      out_.tables[static_cast<size_t>(found_table)].table->schema().column(found_col).type;
  return Status::OK();
}

// NOTE: the operator typing rules below are mirrored by RebindTypes() (end
// of this file), which re-applies them to parameter-substituted trees so
// that PreparedStatement::Execute types — and errors — exactly like the
// literal-substituted SQL text. Any new operator or type rule added here
// must be added there too (prepared_statement_test pins the bit-identity).
Status Binder::BindExpr(Expr* e) {
  for (auto& c : e->children) {
    SKINNER_RETURN_IF_ERROR(BindExpr(c.get()));
  }
  switch (e->kind) {
    case ExprKind::kColumnRef:
      return BindColumnRef(e);
    case ExprKind::kLiteral:
      if (!e->literal.is_null()) {
        e->out_type = e->literal.type();
        if (e->literal.type() == DataType::kString) {
          e->literal_pool_id = catalog_->string_pool()->Intern(e->literal.AsString());
        }
      }
      return Status::OK();
    case ExprKind::kParam:
      if (e->param_idx < 0) {
        return Status::Internal("parameter placeholder without an ordinal");
      }
      NoteParam(e->param_idx);
      // Default slot type until a parent context refines it; stays "open"
      // (param_known false) if no context ever does.
      e->out_type = out_.param_types[static_cast<size_t>(e->param_idx)];
      return Status::OK();
    case ExprKind::kBinaryOp: {
      Expr& l = *e->children[0];
      Expr& r = *e->children[1];
      auto is_num = [](DataType t) { return t != DataType::kString; };
      switch (e->bin_op) {
        case BinOp::kAnd:
        case BinOp::kOr:
          e->out_type = DataType::kInt64;
          return Status::OK();
        case BinOp::kLike:
          // A `?` on either side of LIKE can only be a string (a prior
          // numeric inference for the same ordinal is a conflict).
          if (l.kind == ExprKind::kParam) {
            SKINNER_RETURN_IF_ERROR(SetParamType(&l, DataType::kString));
          }
          if (r.kind == ExprKind::kParam) {
            SKINNER_RETURN_IF_ERROR(SetParamType(&r, DataType::kString));
          }
          if (l.out_type != DataType::kString || r.out_type != DataType::kString) {
            return Status::TypeError("LIKE requires string operands");
          }
          e->out_type = DataType::kInt64;
          return Status::OK();
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          // Bind-time inference: a `?` takes the type of the non-parameter
          // side it is compared against (a NULL literal carries no type and
          // infers nothing — `? = NULL` accepts any value, exactly like the
          // literal-substituted text). `? = ?` stays open (checked against
          // the concrete values at Execute time instead); a `?` already
          // inferred with the other type class is a conflict.
          {
            auto null_lit = [](const Expr& x) {
              return x.kind == ExprKind::kLiteral && x.literal.is_null();
            };
            if (l.kind == ExprKind::kParam && r.kind != ExprKind::kParam &&
                !null_lit(r)) {
              SKINNER_RETURN_IF_ERROR(SetParamType(&l, r.out_type));
            }
            if (r.kind == ExprKind::kParam && l.kind != ExprKind::kParam &&
                !null_lit(l)) {
              SKINNER_RETURN_IF_ERROR(SetParamType(&r, l.out_type));
            }
          }
          bool l_str = l.out_type == DataType::kString;
          bool r_str = r.out_type == DataType::kString;
          // NULL literals compare with anything; open params defer the
          // check to substitution time.
          bool l_null = l.kind == ExprKind::kLiteral && l.literal.is_null();
          bool r_null = r.kind == ExprKind::kLiteral && r.literal.is_null();
          bool open = IsOpenParam(l) || IsOpenParam(r);
          if (!l_null && !r_null && !open && l_str != r_str) {
            return Status::TypeError("cannot compare string with numeric: " +
                                     e->ToString());
          }
          e->out_type = DataType::kInt64;
          return Status::OK();
        }
        default:
          // Arithmetic: a `?` operand is numeric; it takes the sibling's
          // numeric type when available (INT otherwise). A `?` already
          // inferred as string is a conflict.
          if (l.kind == ExprKind::kParam) {
            SKINNER_RETURN_IF_ERROR(SetParamType(
                &l, is_num(r.out_type) && r.kind != ExprKind::kParam
                        ? r.out_type
                        : DataType::kInt64));
          }
          if (r.kind == ExprKind::kParam) {
            SKINNER_RETURN_IF_ERROR(SetParamType(
                &r, is_num(l.out_type) ? l.out_type : DataType::kInt64));
          }
          if (!is_num(l.out_type) || !is_num(r.out_type)) {
            return Status::TypeError("arithmetic requires numeric operands: " +
                                     e->ToString());
          }
          e->out_type = (l.out_type == DataType::kDouble ||
                         r.out_type == DataType::kDouble)
                            ? DataType::kDouble
                            : DataType::kInt64;
          return Status::OK();
      }
    }
    case ExprKind::kUnaryOp:
      switch (e->un_op) {
        case UnOp::kNeg:
          if (e->children[0]->kind == ExprKind::kParam) {
            SKINNER_RETURN_IF_ERROR(
                SetParamType(e->children[0].get(), DataType::kInt64));
          }
          if (e->children[0]->out_type == DataType::kString) {
            return Status::TypeError("cannot negate a string");
          }
          e->out_type = e->children[0]->out_type;
          return Status::OK();
        default:
          e->out_type = DataType::kInt64;
          return Status::OK();
      }
    case ExprKind::kFunctionCall: {
      const Udf* udf = udfs_->Find(e->func_name);
      if (udf == nullptr) {
        return Status::BindError("unknown function: " + e->func_name);
      }
      if (udf->arity() >= 0 &&
          udf->arity() != static_cast<int>(e->children.size())) {
        return Status::BindError(
            StrFormat("function %s expects %d args, got %zu",
                      e->func_name.c_str(), udf->arity(), e->children.size()));
      }
      e->udf = udf;
      e->out_type = udf->return_type();
      return Status::OK();
    }
    case ExprKind::kAggregate:
      switch (e->agg) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          e->out_type = DataType::kInt64;
          break;
        case AggKind::kAvg:
          e->out_type = DataType::kDouble;
          break;
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
          e->out_type = e->children[0]->out_type;
          break;
      }
      if (e->agg != AggKind::kCountStar &&
          e->children[0]->ContainsAggregate()) {
        return Status::BindError("nested aggregates are not allowed");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Result<BoundQuery> Binder::Bind(SelectStmt* stmt) {
  // FROM.
  for (const auto& ref : stmt->from) {
    Table* t = catalog_->FindTable(ref.table_name);
    if (t == nullptr) {
      return Status::BindError("unknown table: " + ref.table_name);
    }
    std::string alias = ref.EffectiveName();
    for (const auto& bt : out_.tables) {
      if (ToLower(bt.alias) == ToLower(alias)) {
        return Status::BindError("duplicate table alias: " + alias);
      }
    }
    out_.tables.push_back(BoundTable{t, alias});
  }
  if (out_.tables.empty()) return Status::BindError("empty FROM list");

  // WHERE.
  if (stmt->where != nullptr) {
    SKINNER_RETURN_IF_ERROR(BindExpr(stmt->where.get()));
    if (stmt->where->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    out_.where = std::move(stmt->where);
  }

  // SELECT list ('*' expands to every column of every table).
  for (auto& item : stmt->select) {
    if (item.is_star) {
      for (size_t t = 0; t < out_.tables.size(); ++t) {
        const Table* tab = out_.tables[t].table;
        for (int c = 0; c < tab->schema().num_columns(); ++c) {
          BoundSelectItem out_item;
          out_item.expr = Expr::MakeColumn(out_.tables[t].alias,
                                           tab->schema().column(c).name);
          SKINNER_RETURN_IF_ERROR(BindExpr(out_item.expr.get()));
          out_item.name = out_.tables.size() > 1
                              ? out_.tables[t].alias + "." + tab->schema().column(c).name
                              : tab->schema().column(c).name;
          out_.select.push_back(std::move(out_item));
        }
      }
      continue;
    }
    SKINNER_RETURN_IF_ERROR(BindExpr(item.expr.get()));
    BoundSelectItem out_item;
    out_item.expr = std::move(item.expr);
    out_item.name = item.alias;
    out_.has_aggregates |= out_item.expr->ContainsAggregate();
    out_.select.push_back(std::move(out_item));
  }

  // GROUP BY (ordinals refer to select items).
  for (auto& g : stmt->group_by) {
    if (g->kind == ExprKind::kLiteral && !g->literal.is_null() &&
        g->literal.type() == DataType::kInt64) {
      int64_t ord = g->literal.AsInt();
      if (ord < 1 || ord > static_cast<int64_t>(out_.select.size())) {
        return Status::BindError("GROUP BY ordinal out of range");
      }
      out_.group_by.push_back(out_.select[static_cast<size_t>(ord - 1)].expr->Clone());
      continue;
    }
    SKINNER_RETURN_IF_ERROR(BindExpr(g.get()));
    out_.group_by.push_back(std::move(g));
  }

  // ORDER BY (ordinals refer to select items).
  for (auto& o : stmt->order_by) {
    BoundOrderItem item;
    item.desc = o.desc;
    if (o.expr->kind == ExprKind::kLiteral && !o.expr->literal.is_null() &&
        o.expr->literal.type() == DataType::kInt64) {
      int64_t ord = o.expr->literal.AsInt();
      if (ord < 1 || ord > static_cast<int64_t>(out_.select.size())) {
        return Status::BindError("ORDER BY ordinal out of range");
      }
      item.expr = out_.select[static_cast<size_t>(ord - 1)].expr->Clone();
    } else {
      SKINNER_RETURN_IF_ERROR(BindExpr(o.expr.get()));
      item.expr = std::move(o.expr);
    }
    out_.order_by.push_back(std::move(item));
  }

  out_.distinct = stmt->distinct;
  out_.limit = stmt->limit;

  // Validate grouping: with aggregates/GROUP BY, plain select items must be
  // grouping expressions.
  if (out_.has_aggregates || !out_.group_by.empty()) {
    for (const auto& item : out_.select) {
      if (item.expr->ContainsAggregate()) continue;
      bool found = false;
      for (const auto& g : out_.group_by) {
        if (g->ToString() == item.expr->ToString()) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::BindError("select item must be grouped or aggregated: " +
                                 item.expr->ToString());
      }
    }
  }
  return std::move(out_);
}

Result<Table*> Binder::BindMutationTarget(const std::string& name) {
  Table* t = catalog_->FindTable(name);
  if (t == nullptr) {
    return Status::BindError("unknown table: " + name);
  }
  out_.tables.push_back(BoundTable{t, name});
  return t;
}

void Binder::FinishMutation(BoundMutation* m) {
  m->num_params = out_.num_params;
  m->param_types = std::move(out_.param_types);
  m->param_known = std::move(out_.param_known);
}

Result<BoundMutation> Binder::BindUpdateStmt(UpdateStmt* stmt) {
  BoundMutation m;
  m.kind = Statement::Kind::kUpdate;
  m.table_name = stmt->table;
  SKINNER_ASSIGN_OR_RETURN(m.table, BindMutationTarget(stmt->table));
  for (auto& [col_name, expr] : stmt->sets) {
    BoundMutation::SetClause sc;
    sc.column_idx = m.table->schema().FindColumn(col_name);
    if (sc.column_idx < 0) {
      return Status::BindError("no column " + col_name + " in " + stmt->table);
    }
    const DataType col_type = m.table->schema().column(sc.column_idx).type;
    // A bare `SET col = ?` has no expression context to infer from — the
    // column's own type is the context.
    if (expr->kind == ExprKind::kParam) {
      SKINNER_RETURN_IF_ERROR(SetParamType(expr.get(), col_type));
    }
    SKINNER_RETURN_IF_ERROR(BindExpr(expr.get()));
    if (expr->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in SET");
    }
    // Storage coercion handles numeric<->numeric; string vs numeric is the
    // same class error AppendValue would raise, caught at bind time. NULL
    // literals and open params defer to the executor.
    auto is_str = [](DataType t) { return t == DataType::kString; };
    bool null_lit =
        expr->kind == ExprKind::kLiteral && expr->literal.is_null();
    if (!null_lit && !IsOpenParam(*expr) &&
        is_str(expr->out_type) != is_str(col_type)) {
      return Status::TypeError("cannot assign " + expr->ToString() +
                               " to column " + col_name);
    }
    sc.expr = std::move(expr);
    m.sets.push_back(std::move(sc));
  }
  if (stmt->where != nullptr) {
    SKINNER_RETURN_IF_ERROR(BindExpr(stmt->where.get()));
    if (stmt->where->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    m.where = std::move(stmt->where);
  }
  FinishMutation(&m);
  return m;
}

Result<BoundMutation> Binder::BindDeleteStmt(DeleteStmt* stmt) {
  BoundMutation m;
  m.kind = Statement::Kind::kDelete;
  m.table_name = stmt->table;
  SKINNER_ASSIGN_OR_RETURN(m.table, BindMutationTarget(stmt->table));
  if (stmt->where != nullptr) {
    SKINNER_RETURN_IF_ERROR(BindExpr(stmt->where.get()));
    if (stmt->where->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    m.where = std::move(stmt->where);
  }
  FinishMutation(&m);
  return m;
}

}  // namespace

Result<BoundQuery> BindSelect(SelectStmt* stmt, Catalog* catalog,
                              const UdfRegistry* udfs) {
  Binder binder(catalog, udfs);
  return binder.Bind(stmt);
}

Result<BoundMutation> BindUpdate(UpdateStmt* stmt, Catalog* catalog,
                                 const UdfRegistry* udfs) {
  Binder binder(catalog, udfs);
  return binder.BindUpdateStmt(stmt);
}

Result<BoundMutation> BindDelete(DeleteStmt* stmt, Catalog* catalog,
                                 const UdfRegistry* udfs) {
  Binder binder(catalog, udfs);
  return binder.BindDeleteStmt(stmt);
}

std::unique_ptr<BoundMutation> BoundMutation::Clone() const {
  auto m = std::make_unique<BoundMutation>();
  m->kind = kind;
  m->table = table;
  m->table_name = table_name;
  m->sets.reserve(sets.size());
  for (const auto& s : sets) {
    m->sets.push_back(SetClause{s.column_idx, s.expr->Clone()});
  }
  if (where != nullptr) m->where = where->Clone();
  m->num_params = num_params;
  m->param_types = param_types;
  m->param_known = param_known;
  return m;
}

std::unique_ptr<BoundQuery> BoundQuery::Clone() const {
  auto q = std::make_unique<BoundQuery>();
  q->tables = tables;
  if (where != nullptr) q->where = where->Clone();
  q->select.reserve(select.size());
  for (const auto& s : select) {
    q->select.push_back(BoundSelectItem{s.expr->Clone(), s.name});
  }
  q->distinct = distinct;
  q->group_by.reserve(group_by.size());
  for (const auto& g : group_by) q->group_by.push_back(g->Clone());
  q->order_by.reserve(order_by.size());
  for (const auto& o : order_by) {
    q->order_by.push_back(BoundOrderItem{o.expr->Clone(), o.desc});
  }
  q->limit = limit;
  q->has_aggregates = has_aggregates;
  q->num_params = num_params;
  q->param_types = param_types;
  q->param_known = param_known;
  return q;
}

Status RebindTypes(Expr* e) {
  for (auto& c : e->children) {
    SKINNER_RETURN_IF_ERROR(RebindTypes(c.get()));
  }
  auto is_num = [](DataType t) { return t != DataType::kString; };
  switch (e->kind) {
    case ExprKind::kColumnRef:
      return Status::OK();  // bound type is authoritative
    case ExprKind::kLiteral:
      if (!e->literal.is_null()) e->out_type = e->literal.type();
      return Status::OK();
    case ExprKind::kParam:
      return Status::Internal("unsubstituted ? parameter in executable tree");
    case ExprKind::kBinaryOp: {
      const Expr& l = *e->children[0];
      const Expr& r = *e->children[1];
      switch (e->bin_op) {
        case BinOp::kAnd:
        case BinOp::kOr:
          e->out_type = DataType::kInt64;
          return Status::OK();
        case BinOp::kLike:
          if (l.out_type != DataType::kString ||
              r.out_type != DataType::kString) {
            return Status::TypeError("LIKE requires string operands");
          }
          e->out_type = DataType::kInt64;
          return Status::OK();
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          bool l_str = l.out_type == DataType::kString;
          bool r_str = r.out_type == DataType::kString;
          bool l_null = l.kind == ExprKind::kLiteral && l.literal.is_null();
          bool r_null = r.kind == ExprKind::kLiteral && r.literal.is_null();
          if (!l_null && !r_null && l_str != r_str) {
            return Status::TypeError("cannot compare string with numeric: " +
                                     e->ToString());
          }
          e->out_type = DataType::kInt64;
          return Status::OK();
        }
        default:
          if (!is_num(l.out_type) || !is_num(r.out_type)) {
            return Status::TypeError("arithmetic requires numeric operands: " +
                                     e->ToString());
          }
          e->out_type = (l.out_type == DataType::kDouble ||
                         r.out_type == DataType::kDouble)
                            ? DataType::kDouble
                            : DataType::kInt64;
          return Status::OK();
      }
    }
    case ExprKind::kUnaryOp:
      switch (e->un_op) {
        case UnOp::kNeg:
          if (e->children[0]->out_type == DataType::kString) {
            return Status::TypeError("cannot negate a string");
          }
          e->out_type = e->children[0]->out_type;
          return Status::OK();
        default:
          e->out_type = DataType::kInt64;
          return Status::OK();
      }
    case ExprKind::kFunctionCall:
      if (e->udf == nullptr) {
        return Status::Internal("unbound function in executable tree");
      }
      e->out_type = e->udf->return_type();
      return Status::OK();
    case ExprKind::kAggregate:
      switch (e->agg) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          e->out_type = DataType::kInt64;
          break;
        case AggKind::kAvg:
          e->out_type = DataType::kDouble;
          break;
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
          e->out_type = e->children[0]->out_type;
          break;
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

}  // namespace skinner
