#ifndef SKINNER_SQL_AST_H_
#define SKINNER_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "storage/schema.h"

namespace skinner {

/// One FROM-list entry: base table plus optional alias.
struct TableRef {
  std::string table_name;
  std::string alias;  // equals table_name if none given

  const std::string& EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }
};

/// One SELECT-list item.
struct SelectItem {
  std::unique_ptr<Expr> expr;  // null iff is_star
  std::string alias;           // output column name (may be synthesized)
  bool is_star = false;
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

/// Parsed (not yet bound) SELECT statement. JOIN ... ON clauses are folded
/// into `where` as conjuncts during parsing; only inner joins exist.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> select;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;  // may be null
  std::vector<std::unique_ptr<Expr>> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none
};

struct CreateTableStmt {
  std::string name;
  std::vector<ColumnDef> columns;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;  // literal exprs
};

struct DropTableStmt {
  std::string name;
};

/// UPDATE t SET col = expr [, col = expr]* [WHERE cond]. SET expressions
/// may reference the table's own columns (evaluated against the
/// pre-update row) and `?` parameters.
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> sets;
  std::unique_ptr<Expr> where;  // may be null
};

/// DELETE FROM t [WHERE cond].
struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;  // may be null
};

/// Any parsed SQL statement.
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kInsert,
    kDropTable,
    kUpdate,
    kDelete
  };
  Kind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DropTableStmt> drop;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
};

}  // namespace skinner

#endif  // SKINNER_SQL_AST_H_
