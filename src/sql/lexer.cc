#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace skinner {

bool Token::Is(const char* kw) const {
  if (type != TokenType::kIdent) return false;
  size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    if (kw[i] == '\0') return false;
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return kw[n] == '\0';
}

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdent;
      tok.text = sql.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      if (is_double) {
        tok.type = TokenType::kDouble;
        tok.double_val = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInt;
        tok.int_val = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            s += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        s += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", tok.pos));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '?') {
      tok.type = TokenType::kParam;
      tok.text = "?";
      ++i;
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string();
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
      tok.type = TokenType::kSymbol;
      tok.text = two;
      i += 2;
      out.push_back(std::move(tok));
      continue;
    }
    static const char kSingles[] = "(),.=<>+-*/%;";
    bool matched = false;
    for (const char* p = kSingles; *p; ++p) {
      if (c == *p) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::ParseError(
          StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
    tok.type = TokenType::kSymbol;
    tok.text = std::string(1, c);
    ++i;
    out.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.pos = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace skinner
