#include "sql/parser.h"

#include <utility>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace skinner {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseStatement();

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Advance() { return toks_[pos_++]; }
  bool MatchKeyword(const char* kw) {
    if (Peek().Is(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError(StrFormat("expected %s at offset %zu (got '%s')",
                                          kw, Peek().pos, Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!MatchSymbol(s)) {
      return Status::ParseError(StrFormat("expected '%s' at offset %zu (got '%s')",
                                          s, Peek().pos, Peek().text.c_str()));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError(
          StrFormat("expected identifier at offset %zu", Peek().pos));
    }
    return Advance().text;
  }

  Result<Statement> ParseSelect();
  Result<Statement> ParseCreate();
  Result<Statement> ParseInsert();
  Result<Statement> ParseDrop();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();

  // Expression grammar, loosest to tightest binding.
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }
  Result<std::unique_ptr<Expr>> ParseOr();
  Result<std::unique_ptr<Expr>> ParseAnd();
  Result<std::unique_ptr<Expr>> ParseNot();
  Result<std::unique_ptr<Expr>> ParseComparison();
  Result<std::unique_ptr<Expr>> ParseAdditive();
  Result<std::unique_ptr<Expr>> ParseMultiplicative();
  Result<std::unique_ptr<Expr>> ParseUnary();
  Result<std::unique_ptr<Expr>> ParsePrimary();

  bool IsReserved(const Token& t) const;

  std::vector<Token> toks_;
  size_t pos_ = 0;
  int num_params_ = 0;  // `?` placeholders seen so far, in SQL-text order
};

bool Parser::IsReserved(const Token& t) const {
  static const char* kReserved[] = {
      "select", "from",  "where", "group",  "order", "by",    "limit",
      "and",    "or",    "not",   "as",     "join",  "inner", "on",
      "like",   "in",    "between", "is",   "null",  "desc",  "asc",
      "distinct", "having", "values", "insert", "into", "create", "table",
      "drop", "update", "set", "delete",
  };
  if (t.type != TokenType::kIdent) return false;
  for (const char* kw : kReserved) {
    if (t.Is(kw)) return true;
  }
  return false;
}

Result<Statement> Parser::ParseStatement() {
  if (Peek().Is("select")) return ParseSelect();
  if (Peek().Is("create")) return ParseCreate();
  if (Peek().Is("insert")) return ParseInsert();
  if (Peek().Is("drop")) return ParseDrop();
  if (Peek().Is("update")) return ParseUpdate();
  if (Peek().Is("delete")) return ParseDelete();
  return Status::ParseError(
      "statement must start with SELECT/CREATE/INSERT/DROP/UPDATE/DELETE");
}

Result<Statement> Parser::ParseSelect() {
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("select"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = MatchKeyword("distinct");

  // Select list.
  do {
    SelectItem item;
    if (MatchSymbol("*")) {
      item.is_star = true;
    } else {
      SKINNER_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("as")) {
        SKINNER_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Peek().type == TokenType::kIdent && !IsReserved(Peek())) {
        item.alias = Advance().text;
      }
      if (item.alias.empty()) item.alias = item.expr->ToString();
    }
    stmt->select.push_back(std::move(item));
  } while (MatchSymbol(","));

  SKINNER_RETURN_IF_ERROR(ExpectKeyword("from"));

  // FROM list with optional JOIN ... ON chains.
  std::vector<std::unique_ptr<Expr>> join_conds;
  auto parse_table_ref = [&]() -> Status {
    TableRef ref;
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    ref.table_name = name.MoveValue();
    if (MatchKeyword("as")) {
      auto alias = ExpectIdent();
      if (!alias.ok()) return alias.status();
      ref.alias = alias.MoveValue();
    } else if (Peek().type == TokenType::kIdent && !IsReserved(Peek())) {
      ref.alias = Advance().text;
    }
    if (ref.alias.empty()) ref.alias = ref.table_name;
    stmt->from.push_back(std::move(ref));
    return Status::OK();
  };
  SKINNER_RETURN_IF_ERROR(parse_table_ref());
  for (;;) {
    if (MatchSymbol(",")) {
      SKINNER_RETURN_IF_ERROR(parse_table_ref());
      continue;
    }
    if (Peek().Is("inner") || Peek().Is("join")) {
      MatchKeyword("inner");
      SKINNER_RETURN_IF_ERROR(ExpectKeyword("join"));
      SKINNER_RETURN_IF_ERROR(parse_table_ref());
      SKINNER_RETURN_IF_ERROR(ExpectKeyword("on"));
      SKINNER_ASSIGN_OR_RETURN(auto cond, ParseExpr());
      join_conds.push_back(std::move(cond));
      continue;
    }
    break;
  }

  if (MatchKeyword("where")) {
    SKINNER_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  // Fold JOIN ON conditions into WHERE.
  for (auto& cond : join_conds) {
    if (stmt->where == nullptr) {
      stmt->where = std::move(cond);
    } else {
      stmt->where = Expr::MakeBinary(BinOp::kAnd, std::move(stmt->where),
                                     std::move(cond));
    }
  }

  if (MatchKeyword("group")) {
    SKINNER_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      SKINNER_ASSIGN_OR_RETURN(auto g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("order")) {
    SKINNER_RETURN_IF_ERROR(ExpectKeyword("by"));
    do {
      OrderItem item;
      SKINNER_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) {
        item.desc = true;
      } else {
        MatchKeyword("asc");
      }
      stmt->order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("limit")) {
    if (Peek().type != TokenType::kInt) {
      return Status::ParseError("LIMIT expects an integer");
    }
    stmt->limit = Advance().int_val;
  }
  MatchSymbol(";");
  if (Peek().type != TokenType::kEnd) {
    return Status::ParseError(
        StrFormat("trailing input at offset %zu: '%s'", Peek().pos,
                  Peek().text.c_str()));
  }
  Statement out;
  out.kind = Statement::Kind::kSelect;
  out.select = std::move(stmt);
  return out;
}

Result<Statement> Parser::ParseCreate() {
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("create"));
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("table"));
  auto stmt = std::make_unique<CreateTableStmt>();
  SKINNER_ASSIGN_OR_RETURN(stmt->name, ExpectIdent());
  SKINNER_RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    ColumnDef def;
    SKINNER_ASSIGN_OR_RETURN(def.name, ExpectIdent());
    SKINNER_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
    std::string lt = ToLower(type_name);
    if (lt == "int" || lt == "integer" || lt == "bigint") {
      def.type = DataType::kInt64;
    } else if (lt == "double" || lt == "float" || lt == "real" ||
               lt == "decimal" || lt == "numeric") {
      def.type = DataType::kDouble;
    } else if (lt == "string" || lt == "text" || lt == "varchar" ||
               lt == "char" || lt == "date") {
      def.type = DataType::kString;
      // Optional length argument, e.g. VARCHAR(25) / DECIMAL(15,2).
      if (MatchSymbol("(")) {
        while (!Peek().IsSymbol(")") && Peek().type != TokenType::kEnd) Advance();
        SKINNER_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    } else {
      return Status::ParseError("unknown type: " + type_name);
    }
    stmt->columns.push_back(std::move(def));
  } while (MatchSymbol(","));
  SKINNER_RETURN_IF_ERROR(ExpectSymbol(")"));
  MatchSymbol(";");
  Statement out;
  out.kind = Statement::Kind::kCreateTable;
  out.create = std::move(stmt);
  return out;
}

Result<Statement> Parser::ParseInsert() {
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("insert"));
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("into"));
  auto stmt = std::make_unique<InsertStmt>();
  SKINNER_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("values"));
  do {
    SKINNER_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::unique_ptr<Expr>> row;
    do {
      SKINNER_ASSIGN_OR_RETURN(auto e, ParseExpr());
      row.push_back(std::move(e));
    } while (MatchSymbol(","));
    SKINNER_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt->rows.push_back(std::move(row));
  } while (MatchSymbol(","));
  MatchSymbol(";");
  Statement out;
  out.kind = Statement::Kind::kInsert;
  out.insert = std::move(stmt);
  return out;
}

Result<Statement> Parser::ParseDrop() {
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("drop"));
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("table"));
  auto stmt = std::make_unique<DropTableStmt>();
  SKINNER_ASSIGN_OR_RETURN(stmt->name, ExpectIdent());
  MatchSymbol(";");
  Statement out;
  out.kind = Statement::Kind::kDropTable;
  out.drop = std::move(stmt);
  return out;
}

Result<Statement> Parser::ParseUpdate() {
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("update"));
  auto stmt = std::make_unique<UpdateStmt>();
  SKINNER_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("set"));
  do {
    SKINNER_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
    SKINNER_RETURN_IF_ERROR(ExpectSymbol("="));
    SKINNER_ASSIGN_OR_RETURN(auto e, ParseExpr());
    stmt->sets.emplace_back(std::move(col), std::move(e));
  } while (MatchSymbol(","));
  if (MatchKeyword("where")) {
    SKINNER_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  MatchSymbol(";");
  if (Peek().type != TokenType::kEnd) {
    return Status::ParseError(
        StrFormat("trailing input at offset %zu: '%s'", Peek().pos,
                  Peek().text.c_str()));
  }
  Statement out;
  out.kind = Statement::Kind::kUpdate;
  out.update = std::move(stmt);
  return out;
}

Result<Statement> Parser::ParseDelete() {
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("delete"));
  SKINNER_RETURN_IF_ERROR(ExpectKeyword("from"));
  auto stmt = std::make_unique<DeleteStmt>();
  SKINNER_ASSIGN_OR_RETURN(stmt->table, ExpectIdent());
  if (MatchKeyword("where")) {
    SKINNER_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  MatchSymbol(";");
  if (Peek().type != TokenType::kEnd) {
    return Status::ParseError(
        StrFormat("trailing input at offset %zu: '%s'", Peek().pos,
                  Peek().text.c_str()));
  }
  Statement out;
  out.kind = Statement::Kind::kDelete;
  out.del = std::move(stmt);
  return out;
}

Result<std::unique_ptr<Expr>> Parser::ParseOr() {
  SKINNER_ASSIGN_OR_RETURN(auto left, ParseAnd());
  while (MatchKeyword("or")) {
    SKINNER_ASSIGN_OR_RETURN(auto right, ParseAnd());
    left = Expr::MakeBinary(BinOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseAnd() {
  SKINNER_ASSIGN_OR_RETURN(auto left, ParseNot());
  while (MatchKeyword("and")) {
    SKINNER_ASSIGN_OR_RETURN(auto right, ParseNot());
    left = Expr::MakeBinary(BinOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    SKINNER_ASSIGN_OR_RETURN(auto c, ParseNot());
    return Expr::MakeUnary(UnOp::kNot, std::move(c));
  }
  return ParseComparison();
}

Result<std::unique_ptr<Expr>> Parser::ParseComparison() {
  SKINNER_ASSIGN_OR_RETURN(auto left, ParseAdditive());
  // IS [NOT] NULL
  if (MatchKeyword("is")) {
    bool negated = MatchKeyword("not");
    SKINNER_RETURN_IF_ERROR(ExpectKeyword("null"));
    return Expr::MakeUnary(negated ? UnOp::kIsNotNull : UnOp::kIsNull,
                           std::move(left));
  }
  bool negated = false;
  if (Peek().Is("not") && (Peek(1).Is("like") || Peek(1).Is("in") ||
                           Peek(1).Is("between"))) {
    MatchKeyword("not");
    negated = true;
  }
  if (MatchKeyword("like")) {
    SKINNER_ASSIGN_OR_RETURN(auto right, ParseAdditive());
    auto e = Expr::MakeBinary(BinOp::kLike, std::move(left), std::move(right));
    if (negated) e = Expr::MakeUnary(UnOp::kNot, std::move(e));
    return e;
  }
  if (MatchKeyword("between")) {
    SKINNER_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
    SKINNER_RETURN_IF_ERROR(ExpectKeyword("and"));
    SKINNER_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
    auto ge = Expr::MakeBinary(BinOp::kGe, left->Clone(), std::move(lo));
    auto le = Expr::MakeBinary(BinOp::kLe, std::move(left), std::move(hi));
    auto e = Expr::MakeBinary(BinOp::kAnd, std::move(ge), std::move(le));
    if (negated) e = Expr::MakeUnary(UnOp::kNot, std::move(e));
    return e;
  }
  if (MatchKeyword("in")) {
    SKINNER_RETURN_IF_ERROR(ExpectSymbol("("));
    std::unique_ptr<Expr> disj;
    do {
      SKINNER_ASSIGN_OR_RETURN(auto item, ParseExpr());
      auto eq = Expr::MakeBinary(BinOp::kEq, left->Clone(), std::move(item));
      disj = disj ? Expr::MakeBinary(BinOp::kOr, std::move(disj), std::move(eq))
                  : std::move(eq);
    } while (MatchSymbol(","));
    SKINNER_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (negated) disj = Expr::MakeUnary(UnOp::kNot, std::move(disj));
    return disj;
  }
  struct {
    const char* sym;
    BinOp op;
  } static const kOps[] = {
      {"=", BinOp::kEq},  {"<>", BinOp::kNe}, {"!=", BinOp::kNe},
      {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"<", BinOp::kLt},
      {">", BinOp::kGt},
  };
  for (const auto& o : kOps) {
    if (MatchSymbol(o.sym)) {
      SKINNER_ASSIGN_OR_RETURN(auto right, ParseAdditive());
      return Expr::MakeBinary(o.op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseAdditive() {
  SKINNER_ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
  for (;;) {
    BinOp op;
    if (MatchSymbol("+")) {
      op = BinOp::kAdd;
    } else if (MatchSymbol("-")) {
      op = BinOp::kSub;
    } else {
      break;
    }
    SKINNER_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
    left = Expr::MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseMultiplicative() {
  SKINNER_ASSIGN_OR_RETURN(auto left, ParseUnary());
  for (;;) {
    BinOp op;
    if (MatchSymbol("*")) {
      op = BinOp::kMul;
    } else if (MatchSymbol("/")) {
      op = BinOp::kDiv;
    } else if (MatchSymbol("%")) {
      op = BinOp::kMod;
    } else {
      break;
    }
    SKINNER_ASSIGN_OR_RETURN(auto right, ParseUnary());
    left = Expr::MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseUnary() {
  if (MatchSymbol("-")) {
    SKINNER_ASSIGN_OR_RETURN(auto c, ParseUnary());
    return Expr::MakeUnary(UnOp::kNeg, std::move(c));
  }
  return ParsePrimary();
}

Result<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& t = Peek();
  if (t.type == TokenType::kInt) {
    Advance();
    return Expr::MakeLiteral(Value::Int(t.int_val));
  }
  if (t.type == TokenType::kDouble) {
    Advance();
    return Expr::MakeLiteral(Value::Double(t.double_val));
  }
  if (t.type == TokenType::kString) {
    Advance();
    return Expr::MakeLiteral(Value::String(t.text));
  }
  if (t.type == TokenType::kParam) {
    Advance();
    return Expr::MakeParam(num_params_++);
  }
  if (MatchSymbol("(")) {
    SKINNER_ASSIGN_OR_RETURN(auto e, ParseExpr());
    SKINNER_RETURN_IF_ERROR(ExpectSymbol(")"));
    return e;
  }
  if (t.Is("null")) {
    Advance();
    return Expr::MakeLiteral(Value::Null());
  }
  if (t.type == TokenType::kIdent) {
    // Aggregates.
    struct {
      const char* name;
      AggKind kind;
    } static const kAggs[] = {
        {"count", AggKind::kCount}, {"sum", AggKind::kSum},
        {"min", AggKind::kMin},     {"max", AggKind::kMax},
        {"avg", AggKind::kAvg},
    };
    for (const auto& a : kAggs) {
      if (t.Is(a.name) && Peek(1).IsSymbol("(")) {
        Advance();
        Advance();
        if (a.kind == AggKind::kCount && MatchSymbol("*")) {
          SKINNER_RETURN_IF_ERROR(ExpectSymbol(")"));
          return Expr::MakeAgg(AggKind::kCountStar, nullptr);
        }
        SKINNER_ASSIGN_OR_RETURN(auto arg, ParseExpr());
        SKINNER_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Expr::MakeAgg(a.kind, std::move(arg));
      }
    }
    // Function call (UDF).
    if (Peek(1).IsSymbol("(") && !IsReserved(t)) {
      std::string name = Advance().text;
      Advance();  // (
      std::vector<std::unique_ptr<Expr>> args;
      if (!Peek().IsSymbol(")")) {
        do {
          SKINNER_ASSIGN_OR_RETURN(auto e, ParseExpr());
          args.push_back(std::move(e));
        } while (MatchSymbol(","));
      }
      SKINNER_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Expr::MakeFunc(std::move(name), std::move(args));
    }
    // Column reference: ident or ident.ident.
    if (!IsReserved(t)) {
      std::string first = Advance().text;
      if (MatchSymbol(".")) {
        SKINNER_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        return Expr::MakeColumn(std::move(first), std::move(col));
      }
      return Expr::MakeColumn("", std::move(first));
    }
  }
  return Status::ParseError(
      StrFormat("unexpected token '%s' at offset %zu", t.text.c_str(), t.pos));
}

}  // namespace

Result<Statement> ParseSql(const std::string& sql) {
  SKINNER_ASSIGN_OR_RETURN(auto tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace skinner
